/// \file manager.h
/// \brief The publish-subscribe coordinator for dynamic metadata
/// (paper §2, §3.2.3).
///
/// A MetadataManager serves one query graph. It resolves metadata
/// dependencies into handlers (automatic inclusion/exclusion via a
/// depth-first traversal of the dependency graph, §2.4), shares handlers
/// between consumers via reference counting (§2.1), runs update-propagation
/// waves along the inverted dependency graph in topological order (§3.2.3),
/// and owns the graph-level lock of the three-level locking scheme (§4.2).

#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/mutex.h"
#include "common/reentrant_shared_mutex.h"
#include "common/scheduler.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "metadata/handler.h"
#include "metadata/provider.h"

namespace pipes {

class MetadataManager;
class MetadataDurability;
struct DurabilityConfig;
struct RecoveryReport;

/// \brief RAII consumer-side subscription to one metadata item (paper §2.1).
///
/// Move-only. Destruction unsubscribes; dependent items included on behalf
/// of this subscription are automatically excluded when no longer needed.
class MetadataSubscription {
 public:
  MetadataSubscription() = default;
  ~MetadataSubscription();

  MetadataSubscription(const MetadataSubscription&) = delete;
  MetadataSubscription& operator=(const MetadataSubscription&) = delete;
  MetadataSubscription(MetadataSubscription&& other) noexcept;
  MetadataSubscription& operator=(MetadataSubscription&& other) noexcept;

  /// Current value of the subscribed item.
  MetadataValue Get() const;

  /// Numeric convenience.
  double GetDouble() const { return Get().AsDouble(); }

  /// The shared handler (nullptr for an empty subscription).
  const std::shared_ptr<MetadataHandler>& handler() const { return handler_; }

  /// True if this subscription is live.
  bool valid() const { return handler_ != nullptr; }

  /// Unsubscribes now (idempotent).
  void Reset();

 private:
  friend class MetadataManager;
  MetadataSubscription(MetadataManager* manager,
                       std::shared_ptr<MetadataHandler> handler)
      : manager_(manager), handler_(std::move(handler)) {}

  MetadataManager* manager_ = nullptr;
  std::shared_ptr<MetadataHandler> handler_;
};

/// \brief Counters describing metadata-framework activity; the cost unit of
/// the scalability experiments.
struct MetadataManagerStats {
  uint64_t subscriptions = 0;      ///< external Subscribe calls
  uint64_t unsubscriptions = 0;    ///< external unsubscribes
  uint64_t handlers_created = 0;
  uint64_t handlers_removed = 0;
  uint64_t active_handlers = 0;    ///< currently included items
  uint64_t evaluations = 0;        ///< evaluator invocations (maintenance cost)
  uint64_t waves = 0;              ///< propagation waves
  uint64_t wave_refreshes = 0;     ///< triggered-handler refreshes in waves
  uint64_t events_fired = 0;       ///< manual event notifications
  uint64_t wave_plan_hits = 0;     ///< waves served by a cached plan
  uint64_t wave_plan_rebuilds = 0; ///< waves that re-derived their plan
  uint64_t wave_stripes = 0;       ///< striped propagation locks (gauge)
  /// Nested cross-stripe waves handed to the scheduler instead of blocking
  /// (stripe busy, or a stale plan discovered from a nested frame).
  uint64_t waves_deferred = 0;

  // Fault containment (see HandlerHealth / RetryPolicy).
  uint64_t eval_failures = 0;      ///< contained evaluator faults
  uint64_t evals_skipped = 0;      ///< evals skipped by quarantine backoff
  uint64_t degradations = 0;       ///< transitions into kDegraded
  uint64_t quarantines = 0;        ///< transitions into kQuarantined
  uint64_t recoveries = 0;         ///< transitions back to kHealthy
  uint64_t degraded_handlers = 0;    ///< currently kDegraded (gauge)
  uint64_t quarantined_handlers = 0; ///< currently kQuarantined (gauge)

  // Overload control (pressure governor; see EnableOverloadControl).
  int pressure_state = 0;          ///< current PressureState (gauge)
  uint64_t pressure_enters = 0;    ///< transitions kNormal -> kPressured
  uint64_t brownout_enters = 0;    ///< transitions into kBrownout
  uint64_t pressure_exits = 0;     ///< full recoveries back to kNormal
  uint64_t periods_stretched = 0;  ///< periodic items currently degraded (gauge)
  uint64_t period_stretches = 0;   ///< cadence-stretch applications
  uint64_t period_restores = 0;    ///< cadence-restore applications

  // Storm damping (see EnableStormDamping).
  uint64_t events_coalesced = 0;   ///< damped events absorbed into pending waves
  uint64_t storm_flushes = 0;      ///< coalesced-wave flushes executed
  uint64_t breaker_trips = 0;      ///< origins converted to batch refresh
  uint64_t breakers_active = 0;    ///< origins currently batch-refreshing (gauge)

  // Mirrors of the scheduler's overload accounting, so one snapshot shows
  // the whole degradation picture (see SchedulerStats for semantics).
  uint64_t scheduler_deadline_misses = 0;
  uint64_t scheduler_rejections = 0;
  bool scheduler_overloaded = false;

  // Durability (journal/checkpoint/recovery; see EnableDurability and
  // persistence.h). All zero while durability is off and no recovery ran.
  bool durability_enabled = false;
  uint64_t journal_records = 0;     ///< records appended to the journal
  uint64_t journal_bytes = 0;       ///< frame bytes appended
  uint64_t journal_fsyncs = 0;
  uint64_t group_flushes = 0;       ///< commit-buffer pushes to disk
  uint64_t checkpoints = 0;         ///< snapshot generations written
  uint64_t snapshot_generation = 0; ///< current generation (gauge)
  Duration last_checkpoint_duration = 0;
  uint64_t journal_write_failures = 0;  ///< append/flush errors (see below)
  uint64_t checkpoint_failures = 0;     ///< failed CheckpointNow runs
  /// Latched true on the first journal/checkpoint IO failure: acknowledged
  /// mutations may no longer be durable (disk full, rotation failed, ...).
  bool durability_degraded = false;
  Duration last_recovery_duration = 0;   ///< set by RecoverFrom
  uint64_t values_recovered = 0;         ///< set by RecoverFrom
  uint64_t corrupt_records_skipped = 0;  ///< CRC-failed records at recovery
  uint64_t torn_bytes_truncated = 0;     ///< torn journal tails removed
};

/// How update-propagation waves refresh dependent handlers.
enum class PropagationMode {
  /// The paper's design (§3.2.3): collect the affected closure and refresh
  /// in topological (dependencies-first) order, each handler at most once.
  kTopological,
  /// Ablation baseline: recurse into dependents immediately per update.
  /// Diamond shapes refresh handlers multiple times per wave ("glitches"),
  /// possibly with inconsistent inputs.
  kNaiveRecursive,
};

/// \brief Pressure state of the manager's overload governor — a brownout
/// state machine in the style of the handler health machine
/// (kHealthy -> kDegraded -> kQuarantined).
///
/// kNormal: maintenance runs at declared cadences. kPressured: the scheduler
/// reported sustained overload; periodic cadences are stretched by a first,
/// moderate factor. kBrownout: overload persisted; cadences are stretched
/// deeper — but never beyond each item's staleness bound, so consumers keep
/// a predictable freshness floor. Transitions are hysteretic (consecutive
/// governor ticks, not instantaneous signals) and recovery steps down one
/// state at a time.
enum class PressureState {
  kNormal = 0,
  kPressured = 1,
  kBrownout = 2,
};

/// Human-readable name of a pressure state.
const char* PressureStateToString(PressureState s);

/// \brief Tuning of the overload governor (see
/// MetadataManager::EnableOverloadControl).
struct OverloadControlOptions {
  /// Cadence of the governor's pressure evaluation.
  Duration governor_period = 100 * kMicrosPerMilli;
  /// Period-stretch factor applied in kPressured.
  double pressured_factor = 2.0;
  /// Period-stretch factor applied in kBrownout.
  double brownout_factor = 4.0;
  /// Consecutive overloaded ticks in kNormal before entering kPressured.
  int ticks_to_pressure = 2;
  /// Consecutive overloaded ticks in kPressured before entering kBrownout.
  int ticks_to_brownout = 4;
  /// Consecutive calm ticks before stepping one state toward kNormal
  /// (hysteresis: recovery is gradual, re-entry needs fresh evidence).
  int ticks_to_recover = 3;
  /// Staleness cap for items without an explicit WithMaxStaleness bound:
  /// the stretched period never exceeds this multiple of the base period.
  double default_staleness_factor = 8.0;
};

/// \brief Tuning of triggered-wave storm damping (see
/// MetadataManager::EnableStormDamping).
struct StormDampingOptions {
  /// Steady-state budget of propagation waves per origin, per second
  /// (token-bucket refill rate).
  double max_waves_per_sec = 100.0;
  /// Token-bucket capacity: short bursts up to this many back-to-back waves
  /// pass undamped.
  double burst = 4.0;
  /// Events coalesced since the last executed wave at which the origin's
  /// circuit breaker trips into batch-refresh mode.
  uint64_t breaker_trip_coalesced = 64;
  /// Batch-refresh cadence of a tripped origin. The breaker resets when a
  /// whole batch interval passes without a single event.
  Duration breaker_batch_interval = 100 * kMicrosPerMilli;
};

/// \brief Publish-subscribe metadata coordinator for one query graph.
///
/// Thread safety: all public methods are safe to call concurrently.
class MetadataManager {
 public:
  /// `scheduler` runs periodic updates and deferred events; it must outlive
  /// the manager. `wave_stripes` is the number of striped propagation locks
  /// (waves from origins on different stripes run concurrently): 0 picks
  /// hardware_concurrency, and any value is clamped to [1, 64] so a stripe
  /// set always fits one held-stripe bitmask.
  explicit MetadataManager(TaskScheduler& scheduler, size_t wave_stripes = 0);
  ~MetadataManager();

  MetadataManager(const MetadataManager&) = delete;
  MetadataManager& operator=(const MetadataManager&) = delete;

  /// \brief Subscribes to item `key` of `provider`.
  ///
  /// Performs the automatic-inclusion traversal: all transitively required
  /// dependencies are resolved (honoring dynamic resolvers) and included
  /// depth-first, stopping at already-provided items. The whole subscription
  /// is atomic: on error (unknown item, unresolvable dependency, dependency
  /// cycle) nothing is included.
  Result<MetadataSubscription> Subscribe(MetadataProvider& provider,
                                         const MetadataKey& key);

  /// \brief Fires the event notification for an included item (paper §3.2.3):
  /// starts a propagation wave over its dependents. No-op when the item is
  /// not included.
  void FireEvent(MetadataProvider& provider, const MetadataKey& key);

  /// Like FireEvent but runs asynchronously on the scheduler — for calls
  /// from element-processing threads that hold node state locks exclusively.
  void FireEventDeferred(MetadataProvider& provider, const MetadataKey& key);

  /// \brief Runs one update-propagation wave starting at `origin`: all
  /// transitive dependents reachable through triggered/on-demand handlers
  /// are collected and triggered handlers among them are refreshed in
  /// topological (dependencies-first) order, each at most once per wave.
  void PropagateFrom(MetadataHandler& origin, Timestamp now);

  /// The scheduler driving periodic updates.
  TaskScheduler& scheduler() { return scheduler_; }

  /// Number of striped propagation locks (fixed at construction).
  size_t wave_stripe_count() const { return stripes_.size(); }

  /// The clock shared with the scheduler.
  Clock& clock() { return scheduler_.clock(); }

  /// Graph-level metadata lock (paper §4.2): exclusive during structural
  /// changes (inclusion/exclusion), shared during propagation.
  ReentrantSharedMutex& structure_mutex()
      PIPES_RETURN_CAPABILITY(structure_mu_) {
    return structure_mu_;
  }

  /// Selects the propagation algorithm (default kTopological). The naive
  /// mode exists for the ablation bench; production code should not use it.
  /// Atomic so a configuration flip never tears against an in-flight wave.
  void set_propagation_mode(PropagationMode mode) {
    propagation_mode_.store(mode, std::memory_order_relaxed);
  }
  PropagationMode propagation_mode() const {
    return propagation_mode_.load(std::memory_order_relaxed);
  }

  /// \name Overload control (pressure governor)
  ///
  /// Arms a periodic governor that watches the scheduler's hysteretic
  /// overload signal (or an injected probe) and drives the
  /// kNormal -> kPressured -> kBrownout state machine: under sustained
  /// pressure every periodic item's refresh cadence is stretched by the
  /// state's factor, bounded per item by its WithMaxStaleness declaration
  /// (or default_staleness_factor x period), and restored the same way when
  /// pressure clears. Off by default.
  ///@{
  void EnableOverloadControl(const OverloadControlOptions& opts = {});
  /// Cancels the governor and restores all cadences to their base periods.
  void DisableOverloadControl();
  /// Current state of the pressure machine (kNormal while control is off).
  PressureState pressure_state() const {
    return static_cast<PressureState>(
        pressure_state_.load(std::memory_order_acquire));
  }
  /// \brief Test seam: replaces the governor's overload input with `probe`
  /// (called once per governor tick; true = overloaded). Pass nullptr to
  /// return to the scheduler signal. Deterministic tests under
  /// VirtualTimeScheduler need this — virtual time has no natural lateness.
  void SetPressureProbe(std::function<bool()> probe);
  ///@}

  /// \name Triggered-wave storm damping
  ///
  /// Arms per-origin event coalescing: waves from one origin are admitted
  /// through a token bucket; events arriving without a token are coalesced
  /// into one deferred flush wave (metadata is last-writer-wins, so dropping
  /// the intermediate waves loses nothing consumers could still observe). An
  /// origin storming hard enough to coalesce breaker_trip_coalesced events
  /// trips a circuit breaker that converts it to fixed-cadence batch refresh
  /// until a whole batch interval passes quietly. Off by default: undamped
  /// propagation stays exactly as before.
  ///@{
  void EnableStormDamping(const StormDampingOptions& opts = {});
  void DisableStormDamping();
  ///@}

  /// \name Durability (write-ahead journal + checkpoint/restore)
  ///
  /// With durability enabled, every definition, subscription, retirement,
  /// and committed value is appended to a write-ahead journal, and a
  /// periodic task checkpoints the full metadata image (descriptors,
  /// subscription counts, last-known-good values with wall-clock
  /// timestamps) into atomic snapshot files, rotating the journal. After a
  /// crash, RecoverFrom rebuilds the state a fresh manager serves
  /// immediately: recovered values appear as last-known-good with real
  /// staleness; items whose evaluators are not yet re-defined come back as
  /// shells degrading through the fault-containment path. Off by default —
  /// the journal hooks then cost one atomic load each. See persistence.h.
  ///@{
  /// Starts journaling into `config.dir` and checkpoints the current state.
  /// `providers` seeds the checkpoint roster with providers whose items
  /// were defined before enabling (later definitions register themselves);
  /// providers without a manager are attached to this one. Fails when
  /// durability is already enabled or the directory cannot be prepared.
  Status EnableDurability(const DurabilityConfig& config,
                          const std::vector<MetadataProvider*>& providers = {});
  /// Flushes, closes the journal, and stops journaling. Providers torn down
  /// after this are not recorded as gone — the documented way to preserve
  /// durable state across a planned shutdown.
  void DisableDurability();
  bool durability_enabled() const {
    return durability_.load(std::memory_order_acquire) != nullptr;
  }
  /// The active durability engine (nullptr while disabled).
  MetadataDurability* durability() const {
    return durability_.load(std::memory_order_acquire);
  }
  /// \brief Rebuilds metadata state from the journal/snapshot directory
  /// `dir`, resolving persisted provider labels against `providers`.
  ///
  /// Requires durability to be disabled (recover first, then enable). The
  /// returned report owns the re-established subscriptions. See
  /// MetadataDurability::Recover for the full protocol.
  Result<RecoveryReport> RecoverFrom(
      const std::string& dir, const std::vector<MetadataProvider*>& providers);

  /// \name Journal hooks (internal; called by registries and handlers)
  /// One acquire load + null check when durability is off.
  ///@{
  void JournalDefine(const MetadataProvider& provider,
                     const MetadataDescriptor& desc);
  void JournalUndefine(const MetadataProvider& provider,
                       const MetadataKey& key);
  void JournalValue(const MetadataProvider& provider, const MetadataKey& key,
                    const MetadataValue& value, Timestamp now);
  void JournalRetire(const MetadataProvider& provider, const MetadataKey& key);
  /// Adds `provider` to the durability checkpoint roster. Called by
  /// registries *before* taking the registry lock (the roster lock ranks
  /// below it); no-op while durability is off.
  void RegisterDurabilityProvider(const MetadataProvider& provider);
  /// Called by ~MetadataProvider: drops the provider from the checkpoint
  /// roster and records it gone (its items will not be recovered).
  void NotifyProviderTeardown(const MetadataProvider& provider);
  ///@}
  ///@}

  /// Snapshot of activity counters.
  MetadataManagerStats stats() const;

  /// \brief Test seam: the handler's currently stored value, without
  /// invoking its evaluator.
  ///
  /// Unlike MetadataSubscription::Get(), which evaluates on-demand items
  /// (and would therefore perturb the very state a checker wants to
  /// observe), this is a pure lock-free slot read — the same read the
  /// durability checkpoint uses. The deterministic simulation harness uses
  /// it to extract the system's served state for comparison against its
  /// reference model without side effects.
  static MetadataValue PeekValue(const MetadataHandler& handler) {
    return LoadHandlerValue(handler);
  }

  /// Number of currently included items across all providers.
  uint64_t active_handler_count() const {
    return stats_active_.load(std::memory_order_relaxed);
  }

  /// Internal: one evaluator invocation happened (called by handlers).
  void CountEvaluation() {
    stats_evaluations_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Internal: one evaluator fault was contained (called by handlers).
  void CountEvaluationFailure() {
    stats_eval_failures_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Internal: one evaluation was skipped by quarantine backoff.
  void CountSkippedEvaluation() {
    stats_evals_skipped_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Internal: a handler's health changed from `from` to `to`; updates the
  /// transition counters and the degraded/quarantined gauges.
  void CountHealthTransition(HandlerHealth from, HandlerHealth to);

  /// \name Structure epoch (wave-plan cache invalidation)
  ///
  /// A monotonically increasing counter bumped by every structural change to
  /// the dependency graph: inclusion, exclusion, handler retirement, and
  /// dynamic-dependency redefinition in a provider's registry. Cached wave
  /// plans (MetadataHandler::WavePlan) are stamped with the epoch they were
  /// built at; PropagateFrom reuses a plan only when its stamp equals the
  /// current epoch, so a stale plan — which may hold raw pointers to removed
  /// handlers — is never walked. Bumping is a single relaxed atomic
  /// increment: callers that cannot take the structure lock (retirement,
  /// registry redefinition) may still bump, at worst over-invalidating one
  /// cached plan.
  ///@{
  void BumpStructureEpoch() {
    structure_epoch_.fetch_add(1, std::memory_order_release);
  }
  uint64_t structure_epoch() const {
    return structure_epoch_.load(std::memory_order_acquire);
  }
  ///@}

 private:
  friend class MetadataSubscription;
  friend class MetadataDurability;
  /// Remote pushes inject peer values as last-known-good (InjectRecoveredValue)
  /// before starting an ordinary propagation wave — the same protocol crash
  /// recovery uses.
  friend class RemoteMetadataProvider;

  struct PlanEntry {
    MetadataProvider* provider;
    MetadataKey key;
    std::shared_ptr<const MetadataDescriptor> desc;
    std::vector<MetadataRef> deps;
  };

  /// Depth-first planning of the inclusion closure (cycle + existence
  /// checks); appends entries dependencies-first. Runs under the exclusive
  /// structure lock (machine-checked under Clang -Wthread-safety).
  Status PlanInclude(const MetadataRef& ref, std::vector<PlanEntry>* plan,
                     std::unordered_set<MetadataRef, MetadataRefHash>* planned,
                     std::unordered_set<MetadataRef, MetadataRefHash>* in_path)
      PIPES_REQUIRES(structure_mu_);

  /// Creates the handler for one plan entry (dependencies already exist).
  std::shared_ptr<MetadataHandler> Instantiate(const PlanEntry& entry,
                                               Timestamp now)
      PIPES_REQUIRES(structure_mu_);

  /// Drops one external reference and removes the handler (and, recursively,
  /// its now-unneeded dependencies) when the last reference is gone.
  void UnsubscribeExternal(const std::shared_ptr<MetadataHandler>& handler);

  /// Removes `handler` if it has neither external nor internal references.
  void MaybeRemove(const std::shared_ptr<MetadataHandler>& handler)
      PIPES_REQUIRES(structure_mu_);

  /// Refreshes `h`'s dependents depth-first without deduplication.
  void NaivePropagate(MetadataHandler& h, Timestamp now, int depth);

  /// Refreshes one handler in a wave with exception containment, so a
  /// faulting refresh cannot abort the wave.
  void RefreshContained(MetadataHandler& h, Timestamp now);

  /// \brief Runs the wave proper (post-admission): naive or planned refresh
  /// walk. Caller holds at least a shared structure lock and the origin's
  /// wave stripe (a dynamic capability Clang TSA cannot express; the runtime
  /// lock-order validator covers the discipline instead).
  ///
  /// `can_rebuild` is true only for top-level waves (the thread held no
  /// stripe of this manager on entry): a stale plan then triggers the
  /// all-stripes rebuild. A nested frame finding a stale plan defers the
  /// wave to the scheduler instead — it may already hold other stripes, so
  /// it must not block for the full stripe set.
  void RunWaveLocked(MetadataHandler& origin, Timestamp now, bool can_rebuild)
      PIPES_NO_THREAD_SAFETY_ANALYSIS;

  /// \brief Storm-damping admission for a wave originating at `origin`.
  /// Requires the origin's wave stripe (dynamic capability, see above).
  ///
  /// True = a token was available (wave runs now). False = the event was
  /// coalesced into `origin`'s pending flush (scheduled here if none is);
  /// may trip the origin's circuit breaker.
  bool AdmitWave(MetadataHandler& origin, Timestamp now)
      PIPES_NO_THREAD_SAFETY_ANALYSIS;

  /// Schedules a coalesced-flush task for `origin` at `when`. Requires the
  /// origin's wave stripe. A rejected admission (scheduler queue bound)
  /// leaves flush_scheduled false so the next event retries — the coalesced
  /// events are shed, not leaked.
  void ScheduleStormFlush(MetadataHandler& origin, Timestamp when)
      PIPES_NO_THREAD_SAFETY_ANALYSIS;

  /// Deferred flush of an origin's coalesced events: runs one wave for the
  /// whole run, re-arms the batch cadence while the breaker is tripped, and
  /// resets the breaker after a quiet interval.
  void FlushStorm(const std::weak_ptr<MetadataHandler>& weak)
      PIPES_NO_THREAD_SAFETY_ANALYSIS;

  /// \brief Re-fires `origin`'s wave as a scheduler task running top-level.
  ///
  /// Used when a nested wave cannot take its origin's stripe without risking
  /// an ABBA cycle (stripe held by another in-flight wave) or needs a plan
  /// rebuild it must not block for. Under scheduler admission control the
  /// deferred wave may be shed like any other one-shot — consistent with the
  /// overload contract.
  void DeferWave(MetadataHandler& origin);

  /// One governor tick: sample the pressure signal, advance the state
  /// machine, apply/restore cadence factors on transitions.
  void GovernorTick();

  /// Applies `factor` to every live registered periodic handler (pruning
  /// dead ones) and refreshes the stretched-items gauge.
  void ApplyPressureFactorLocked(double factor) PIPES_REQUIRES(pressure_mu_);

  /// Recovery-time value injection: publishes `v` with update time `ts` as
  /// `handler`'s last-known-good value without invoking its evaluator.
  void InjectRecoveredValue(MetadataHandler& handler, const MetadataValue& v,
                            Timestamp ts);

  /// Checkpoint-time value read: the handler's stored value (lock-free slot
  /// read; never invokes the evaluator, unlike Get()). Used by the
  /// durability engine through its friendship with this class.
  static MetadataValue LoadHandlerValue(const MetadataHandler& handler);

  /// \brief Rebuilds `origin`'s cached wave plan against `epoch`.
  ///
  /// Derives the affected closure (BFS over dependents through
  /// propagate-through handlers) and Kahn-orders its triggered handlers into
  /// `origin.wave_plan_.refresh`, reusing the origin stripe's scratch
  /// buffers and per-handler `wave_mark_`/`wave_indegree_` fields instead of
  /// allocating per-wave hash containers. Caller holds ALL wave stripes (the
  /// per-handler scratch fields are shared between closures, so a rebuild
  /// must exclude every in-flight wave) and at least a shared structure lock
  /// (so the graph cannot change shape underneath; `epoch` was read before
  /// the rebuild, making the stamp conservative).
  void RebuildWavePlan(MetadataHandler& origin, uint64_t epoch)
      PIPES_NO_THREAD_SAFETY_ANALYSIS;

  /// \brief All-stripes rebuild dance for a top-level wave that found a
  /// stale plan.
  ///
  /// The caller holds exactly the origin's stripe. That stripe is released
  /// first, then every stripe is taken in ascending index order (blocking
  /// from an empty hold set can never deadlock: every other holder either
  /// also ascends from nothing or holds a single stripe it will release
  /// without blocking on a second one), the staleness check is repeated (a
  /// concurrent rebuild may have won the race during the unlocked window),
  /// and the non-origin stripes are released again — the caller continues
  /// its walk under the origin stripe alone. Returns true when this call did
  /// the rebuild.
  bool RebuildUnderAllStripes(MetadataHandler& origin)
      PIPES_NO_THREAD_SAFETY_ANALYSIS;

  TaskScheduler& scheduler_;
  /// Graph-level lock of the three-level scheme (§4.2). Outer to the
  /// wave stripes and every handler lock; see lock_order.h ranks.
  ReentrantSharedMutex structure_mu_{"MetadataManager::structure_mu",
                                     lockorder::kRankMetadataStructure};

  /// \brief One propagation stripe: the wave lock shared by the origins
  /// mapped to this stripe, plus the rebuild scratch their plan rebuilds
  /// reuse (owned per stripe so steady-state rebuilds allocate nothing once
  /// the buffers reached the high-water closure size).
  ///
  /// Stripe protocol (DESIGN.md §3.9): a steady-state wave holds only its
  /// origin's stripe; a plan rebuild takes every stripe in ascending index
  /// order from an empty hold set; a nested wave (fired by a refresh
  /// evaluator) re-enters its own stripe recursively but only try-locks a
  /// foreign stripe, deferring the wave to the scheduler on contention.
  struct WaveStripe {
    /// Recursive: a wave refresh may synchronously fire a nested event on
    /// an origin of the same stripe (§3.2.3).
    RecursiveMutex mu{"MetadataManager::wave_stripe_mu",
                      lockorder::kRankWaveStripe};
    /// BFS closure of the current rebuild (affected handlers, discovery
    /// order).
    std::vector<MetadataHandler*> scratch_closure PIPES_GUARDED_BY(mu);
    /// Kahn ready-queue of the current rebuild (consumed by index).
    std::vector<MetadataHandler*> scratch_ready PIPES_GUARDED_BY(mu);
  };

  /// Striped propagation locks. Sized in the constructor, never resized;
  /// unique_ptr keeps stripe addresses stable for the validator.
  // pipes-analyze: unguarded(sized in the ctor, never resized; stripes are internally locked)
  std::vector<std::unique_ptr<WaveStripe>> stripes_;
  /// Round-robin stripe assignment for newly included handlers (mutated
  /// under the exclusive structure lock, atomic so lock-free readers of the
  /// counter — none today — stay well-defined).
  std::atomic<uint64_t> stripe_seq_{0};

  std::atomic<PropagationMode> propagation_mode_{
      PropagationMode::kTopological};

  /// Current structure epoch; see BumpStructureEpoch().
  std::atomic<uint64_t> structure_epoch_{1};

  /// Stamp source for `MetadataHandler::wave_mark_`: incremented per plan
  /// rebuild, so closure-membership tests are one compare and never need
  /// clearing. Atomic: rebuilds from different origins draw stamps
  /// concurrently (the per-handler scratch itself is protected by the
  /// all-stripes rebuild discipline).
  std::atomic<uint64_t> wave_stamp_{0};

  /// \name Overload-governor state
  ///
  /// `pressure_mu_` ranks between the propagation and handler-dependents
  /// locks: it is taken under the exclusive structure lock (periodic-handler
  /// registration in Instantiate) and held while stretching handler cadences
  /// (handler period locks, scheduler locks).
  ///@{
  mutable Mutex pressure_mu_{"MetadataManager::pressure_mu",
                             lockorder::kRankPressureControl};
  OverloadControlOptions overload_options_ PIPES_GUARDED_BY(pressure_mu_);
  bool overload_enabled_ PIPES_GUARDED_BY(pressure_mu_) = false;
  std::function<bool()> pressure_probe_ PIPES_GUARDED_BY(pressure_mu_);
  TaskHandle governor_task_ PIPES_GUARDED_BY(pressure_mu_);
  int hot_ticks_ PIPES_GUARDED_BY(pressure_mu_) = 0;
  int cool_ticks_ PIPES_GUARDED_BY(pressure_mu_) = 0;
  double current_factor_ PIPES_GUARDED_BY(pressure_mu_) = 1.0;
  /// Every included periodic handler, for cadence stretching. Weak: the
  /// governor must never extend handler lifetime past exclusion.
  std::vector<std::weak_ptr<MetadataHandler>> periodic_handlers_
      PIPES_GUARDED_BY(pressure_mu_);
  /// Atomic mirror of the machine state so pressure_state() is lock-free.
  std::atomic<int> pressure_state_{0};
  ///@}

  /// Storm damping switch. Atomic so the undamped fast path is one relaxed
  /// load; flipped by Enable/DisableStormDamping.
  std::atomic<bool> storm_damping_enabled_{false};
  /// Storm damping configuration. Written under ALL wave stripes
  /// (EnableStormDamping) and read under any one stripe (AdmitWave,
  /// FlushStorm), so writers exclude every reader — the striped analogue of
  /// the old propagation-lock guard.
  // pipes-analyze: unguarded(written under all wave stripes, read under any one stripe)
  StormDampingOptions storm_options_;

  std::atomic<uint64_t> stats_subscriptions_{0};
  std::atomic<uint64_t> stats_unsubscriptions_{0};
  std::atomic<uint64_t> stats_created_{0};
  std::atomic<uint64_t> stats_removed_{0};
  std::atomic<uint64_t> stats_active_{0};
  std::atomic<uint64_t> stats_evaluations_{0};
  std::atomic<uint64_t> stats_waves_{0};
  std::atomic<uint64_t> stats_wave_refreshes_{0};
  std::atomic<uint64_t> stats_wave_plan_hits_{0};
  std::atomic<uint64_t> stats_wave_plan_rebuilds_{0};
  std::atomic<uint64_t> stats_waves_deferred_{0};
  std::atomic<uint64_t> stats_events_{0};
  std::atomic<uint64_t> stats_eval_failures_{0};
  std::atomic<uint64_t> stats_evals_skipped_{0};
  std::atomic<uint64_t> stats_degradations_{0};
  std::atomic<uint64_t> stats_quarantines_{0};
  std::atomic<uint64_t> stats_recoveries_{0};
  std::atomic<uint64_t> stats_degraded_now_{0};
  std::atomic<uint64_t> stats_quarantined_now_{0};
  std::atomic<uint64_t> stats_pressure_enters_{0};
  std::atomic<uint64_t> stats_brownout_enters_{0};
  std::atomic<uint64_t> stats_pressure_exits_{0};
  std::atomic<uint64_t> stats_period_stretches_{0};
  std::atomic<uint64_t> stats_period_restores_{0};
  std::atomic<uint64_t> stats_stretched_now_{0};
  std::atomic<uint64_t> stats_events_coalesced_{0};
  std::atomic<uint64_t> stats_storm_flushes_{0};
  std::atomic<uint64_t> stats_breaker_trips_{0};
  std::atomic<uint64_t> stats_breakers_now_{0};

  /// \name Durability state
  ///
  /// The engine is owned under the admin lock; hot-path hooks read the
  /// atomic mirror only. Disable parks the old engine in the graveyard
  /// instead of destroying it, so a hook that loaded the raw pointer just
  /// before the swap still dereferences live (stopped, journal closed —
  /// appends fail harmlessly) memory.
  ///@{
  mutable Mutex durability_admin_mu_{"MetadataManager::durability_admin_mu",
                                     lockorder::kRankDurabilityAdmin};
  std::unique_ptr<MetadataDurability> durability_owner_
      PIPES_GUARDED_BY(durability_admin_mu_);
  std::vector<std::unique_ptr<MetadataDurability>> durability_graveyard_
      PIPES_GUARDED_BY(durability_admin_mu_);
  std::atomic<MetadataDurability*> durability_{nullptr};
  std::atomic<Duration> stats_recovery_duration_{0};
  std::atomic<uint64_t> stats_values_recovered_{0};
  std::atomic<uint64_t> stats_corrupt_skipped_{0};
  std::atomic<uint64_t> stats_torn_truncated_{0};
  ///@}
};

}  // namespace pipes
