#include "metadata/provider.h"

#include "metadata/manager.h"

namespace pipes {

std::atomic<uint64_t> MetadataProvider::next_id_{1};

MetadataProvider::MetadataProvider(std::string label)
    : label_(std::move(label)),
      provider_id_(next_id_.fetch_add(1, std::memory_order_relaxed)) {
  registry_.AttachOwner(this);
}

MetadataProvider::~MetadataProvider() {
  // Subscriptions may outlive their provider (e.g. a consumer still holds
  // one while the query graph is torn down). Retire the remaining handlers
  // so those subscriptions serve fallback values instead of reaching into
  // freed provider state, and so no periodic task fires afterwards.
  registry_.RetireAllHandlers();
  // With durability on, a provider destroyed mid-run is gone for good: drop
  // it from the checkpoint roster and journal kProviderGone so recovery does
  // not resurrect its items. Planned shutdowns that want the state preserved
  // call DisableDurability() before tearing providers down.
  if (MetadataManager* mgr = metadata_manager()) {
    mgr->NotifyProviderTeardown(*this);
  }
}

void MetadataProvider::AttachMetadataManager(MetadataManager* manager) {
  manager_.store(manager, std::memory_order_release);
  // The registry bumps the manager's structure epoch on dynamic
  // redefinitions, so cached wave plans never survive a dependency change.
  registry_.AttachManager(manager);
  MutexLock lock(modules_mu_);
  for (auto& [name, module] : modules_) {
    module->AttachMetadataManager(manager);
  }
}

void MetadataProvider::RegisterModule(const std::string& name,
                                      MetadataProvider* module) {
  {
    MutexLock lock(modules_mu_);
    modules_[name] = module;
  }
  if (MetadataManager* mgr = metadata_manager()) {
    module->AttachMetadataManager(mgr);
  }
}

void MetadataProvider::UnregisterModule(const std::string& name) {
  MutexLock lock(modules_mu_);
  modules_.erase(name);
}

MetadataProvider* MetadataProvider::MetadataModule(
    const std::string& name) const {
  MutexLock lock(modules_mu_);
  auto it = modules_.find(name);
  return it == modules_.end() ? nullptr : it->second;
}

std::vector<std::string> MetadataProvider::ModuleNames() const {
  MutexLock lock(modules_mu_);
  std::vector<std::string> names;
  names.reserve(modules_.size());
  for (const auto& [name, module] : modules_) names.push_back(name);
  return names;
}

void MetadataProvider::FireMetadataEvent(const MetadataKey& key) {
  if (MetadataManager* mgr = metadata_manager()) {
    mgr->FireEvent(*this, key);
  }
}

}  // namespace pipes
