/// \file registry.h
/// \brief Per-provider catalog of available and included metadata items.
///
/// "The metadata items and handlers are stored at the respective graph
/// nodes ... This direct assignment of metadata to the individual graph
/// nodes facilitates metadata discovery because each node gives information
/// about available metadata items." (paper §2.2)

#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "metadata/descriptor.h"

namespace pipes {

class MetadataHandler;
class MetadataManager;
class MetadataProvider;

/// \brief Holds the metadata descriptors (available items) and the active
/// handlers (included items) of one provider.
///
/// Thread safety: all methods are internally synchronized; structural
/// consistency across providers is the MetadataManager's responsibility.
class MetadataRegistry {
 public:
  MetadataRegistry() = default;
  MetadataRegistry(const MetadataRegistry&) = delete;
  MetadataRegistry& operator=(const MetadataRegistry&) = delete;

  // --- descriptors (available items) ---------------------------------------

  /// Declares a new item. Fails with AlreadyExists if the key is defined.
  Status Define(MetadataDescriptor desc);

  /// Replaces an existing definition — the redefinition facility used by
  /// metadata inheritance (paper §4.4.2). Fails with NotFound when the key
  /// is undefined and FailedPrecondition when the item is currently included
  /// (a live handler would not see the new definition).
  Status Redefine(MetadataDescriptor desc);

  /// Defines or replaces, with the same included-item restriction.
  Status DefineOrRedefine(MetadataDescriptor desc);

  /// Removes a definition. Fails when the item is currently included.
  Status Undefine(const MetadataKey& key);

  /// Looks up a definition; nullptr when unknown. The pointer stays valid
  /// until the definition is redefined or undefined.
  std::shared_ptr<const MetadataDescriptor> Find(const MetadataKey& key) const;

  /// True iff a descriptor for `key` exists.
  bool IsAvailable(const MetadataKey& key) const;

  /// All declared keys, sorted (metadata discovery).
  std::vector<MetadataKey> AvailableKeys() const;

  // --- handlers (included items) --------------------------------------------

  /// The active handler for `key`, or nullptr when the item is not included.
  std::shared_ptr<MetadataHandler> GetHandler(const MetadataKey& key) const;

  /// True iff the item currently has a handler.
  bool IsIncluded(const MetadataKey& key) const;

  /// Keys of all currently included items, sorted.
  std::vector<MetadataKey> IncludedKeys() const;

  /// Number of active handlers.
  size_t included_count() const;

  // --- internal (used by MetadataManager) -----------------------------------
  void AddHandler(const MetadataKey& key, std::shared_ptr<MetadataHandler> h);
  void RemoveHandler(const MetadataKey& key);

  /// Ties this registry to the manager serving its provider's graph, so that
  /// successful dynamic redefinitions (Redefine / DefineOrRedefine /
  /// Undefine — the metadata-inheritance facility of §4.4.2) invalidate the
  /// manager's cached wave plans via a structure-epoch bump. Called by
  /// MetadataProvider::AttachMetadataManager; idempotent.
  void AttachManager(MetadataManager* manager);

  /// Ties this registry to the provider that owns it, so definition changes
  /// can be journaled with the provider's identity when durability is on.
  /// Called once from the MetadataProvider constructor (before the registry
  /// is visible to any other thread).
  void AttachOwner(const MetadataProvider* owner) { owner_ = owner; }

  /// Retires every still-included handler (provider teardown): cancels their
  /// mechanism tasks and freezes them on fallback/last-known-good values so
  /// outstanding subscriptions degrade gracefully instead of hitting UB.
  /// Called by ~MetadataProvider.
  void RetireAllHandlers();

 private:
  /// Bumps the attached manager's structure epoch (no-op before attachment).
  void BumpManagerEpoch();

  /// Journals a (re)definition / undefinition through the attached manager.
  /// Called *under* mu_, immediately after the map mutation, so the
  /// journal's LSN order matches the in-memory mutation order for
  /// concurrent Define/Undefine of the same key (the journal mutex, rank
  /// 580, legally nests inside the registry lock, rank 450). No-op until
  /// both a manager and an owner are attached.
  void JournalDefine(const std::shared_ptr<const MetadataDescriptor>& stored)
      PIPES_REQUIRES(mu_);
  void JournalUndefine(const MetadataKey& key) PIPES_REQUIRES(mu_);

  /// Adds the owner to the durability checkpoint roster. Called *before*
  /// mu_: the roster lock (rank 250) must not nest inside the registry
  /// lock. No-op while durability is off or nothing is attached.
  void PreRegisterForJournal();

  mutable Mutex mu_{"MetadataRegistry::mu", lockorder::kRankRegistry};
  std::map<MetadataKey, std::shared_ptr<const MetadataDescriptor>> descriptors_
      PIPES_GUARDED_BY(mu_);
  std::map<MetadataKey, std::shared_ptr<MetadataHandler>> handlers_
      PIPES_GUARDED_BY(mu_);
  /// The manager of this provider's graph (nullptr until first inclusion or
  /// explicit attachment). BumpStructureEpoch is a bare atomic increment, so
  /// calling it under mu_ (rank 450) cannot violate the lock order.
  std::atomic<MetadataManager*> manager_{nullptr};
  /// The owning provider (set once at construction, before concurrency).
  const MetadataProvider* owner_ = nullptr;
};

}  // namespace pipes
