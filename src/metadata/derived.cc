#include "metadata/derived.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <mutex>

#include "metadata/descriptor.h"

namespace pipes::derived {

namespace {

/// Shared per-inclusion accumulator; the monitoring hooks reset it so each
/// inclusion aggregates from scratch.
struct AccState {
  std::mutex mu;
  uint64_t n = 0;
  double mean = 0.0;
  double m2 = 0.0;
  double min = 0.0;
  double max = 0.0;
  double last = 0.0;
  Timestamp last_time = kTimestampNever;
  bool has_last = false;

  void Reset() {
    std::lock_guard<std::mutex> lock(mu);
    n = 0;
    mean = m2 = min = max = last = 0.0;
    last_time = kTimestampNever;
    has_last = false;
  }
};

/// Builds a triggered descriptor over `source` whose evaluator feeds each
/// non-null source value into the shared state and returns `finish(state)`.
template <typename Finish>
MetadataDescriptor MakeAccumulatorItem(MetadataKey name, MetadataKey source,
                                       Finish finish, std::string text) {
  auto state = std::make_shared<AccState>();
  return MetadataDescriptor::Triggered(std::move(name))
      .DependsOnSelf(std::move(source))
      .WithEvaluator([state, finish](EvalContext& ctx) -> MetadataValue {
        MetadataValue v = ctx.Dep(0);
        std::lock_guard<std::mutex> lock(state->mu);
        if (!v.is_null()) {
          double x = v.AsDouble();
          ++state->n;
          double delta = x - state->mean;
          state->mean += delta / static_cast<double>(state->n);
          state->m2 += delta * (x - state->mean);
          state->min = state->n == 1 ? x : std::min(state->min, x);
          state->max = state->n == 1 ? x : std::max(state->max, x);
          state->last = x;
        }
        if (state->n == 0) return MetadataValue::Null();
        return finish(*state);
      })
      .WithMonitoring([state](MetadataProvider&) { state->Reset(); },
                      [](MetadataProvider&) {})
      .WithDescription(std::move(text));
}

}  // namespace

Status DefineRunningAverage(MetadataRegistry& registry, MetadataKey name,
                            MetadataKey source) {
  std::string text = "running average of '" + source + "' (triggered)";
  return registry.Define(MakeAccumulatorItem(
      std::move(name), std::move(source),
      [](const AccState& s) { return MetadataValue(s.mean); },
      std::move(text)));
}

Status DefineRunningVariance(MetadataRegistry& registry, MetadataKey name,
                             MetadataKey source) {
  std::string text = "running variance of '" + source + "' (triggered)";
  return registry.Define(MakeAccumulatorItem(
      std::move(name), std::move(source),
      [](const AccState& s) {
        return MetadataValue(s.n < 2 ? 0.0
                                     : s.m2 / static_cast<double>(s.n));
      },
      std::move(text)));
}

Status DefineMin(MetadataRegistry& registry, MetadataKey name,
                 MetadataKey source) {
  std::string text = "minimum of '" + source + "' since inclusion (triggered)";
  return registry.Define(MakeAccumulatorItem(
      std::move(name), std::move(source),
      [](const AccState& s) { return MetadataValue(s.min); },
      std::move(text)));
}

Status DefineMax(MetadataRegistry& registry, MetadataKey name,
                 MetadataKey source) {
  std::string text = "maximum of '" + source + "' since inclusion (triggered)";
  return registry.Define(MakeAccumulatorItem(
      std::move(name), std::move(source),
      [](const AccState& s) { return MetadataValue(s.max); },
      std::move(text)));
}

Status DefineEwma(MetadataRegistry& registry, MetadataKey name,
                  MetadataKey source, double alpha) {
  if (!(alpha > 0.0 && alpha <= 1.0)) {
    return Status::InvalidArgument("EWMA alpha must be in (0, 1]");
  }
  auto state = std::make_shared<AccState>();
  std::string text = "EWMA of '" + source + "' (triggered)";
  return registry.Define(
      MetadataDescriptor::Triggered(std::move(name))
          .DependsOnSelf(std::move(source))
          .WithEvaluator([state, alpha](EvalContext& ctx) -> MetadataValue {
            MetadataValue v = ctx.Dep(0);
            std::lock_guard<std::mutex> lock(state->mu);
            if (!v.is_null()) {
              double x = v.AsDouble();
              if (state->n == 0) {
                state->mean = x;
              } else {
                state->mean = alpha * x + (1.0 - alpha) * state->mean;
              }
              ++state->n;
            }
            if (state->n == 0) return MetadataValue::Null();
            return state->mean;
          })
          .WithMonitoring([state](MetadataProvider&) { state->Reset(); },
                          [](MetadataProvider&) {})
          .WithDescription(std::move(text)));
}

Status DefineRateOfChange(MetadataRegistry& registry, MetadataKey name,
                          MetadataKey source) {
  auto state = std::make_shared<AccState>();
  std::string text =
      "rate of change of '" + source + "' per second (triggered)";
  return registry.Define(
      MetadataDescriptor::Triggered(std::move(name))
          .DependsOnSelf(std::move(source))
          .WithEvaluator([state](EvalContext& ctx) -> MetadataValue {
            MetadataValue v = ctx.Dep(0);
            if (v.is_null()) return MetadataValue::Null();
            double x = v.AsDouble();
            std::lock_guard<std::mutex> lock(state->mu);
            if (!state->has_last) {
              state->last = x;
              state->last_time = ctx.now();
              state->has_last = true;
              return MetadataValue::Null();
            }
            Duration dt = ctx.now() - state->last_time;
            if (dt <= 0) return ctx.Previous();
            double rate = (x - state->last) / ToSeconds(dt);
            state->last = x;
            state->last_time = ctx.now();
            return rate;
          })
          .WithMonitoring([state](MetadataProvider&) { state->Reset(); },
                          [](MetadataProvider&) {})
          .WithDescription(std::move(text)));
}

}  // namespace pipes::derived
