/// \file provider.h
/// \brief Base class for everything that carries metadata: graph nodes and
/// exchangeable modules (paper §2.2, §4.5).

#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/reentrant_shared_mutex.h"
#include "common/thread_annotations.h"
#include "metadata/registry.h"

namespace pipes {

class MetadataManager;

/// \brief Owner of a MetadataRegistry.
///
/// Graph nodes (sources, operators, sinks) and exchangeable modules (e.g. a
/// join's sweep areas) are providers. Modules nest recursively: "The metadata
/// framework is applied recursively to access metadata items of nested
/// modules." (§4.5)
class MetadataProvider {
 public:
  explicit MetadataProvider(std::string label);
  virtual ~MetadataProvider();

  MetadataProvider(const MetadataProvider&) = delete;
  MetadataProvider& operator=(const MetadataProvider&) = delete;

  /// Human-readable name, e.g. "join#3" or "join#3/left_state".
  const std::string& label() const { return label_; }

  /// Process-unique identity, assigned at construction.
  uint64_t provider_id() const { return provider_id_; }

  /// This provider's metadata catalog.
  MetadataRegistry& metadata_registry() { return registry_; }
  const MetadataRegistry& metadata_registry() const { return registry_; }

  /// The manager coordinating subscriptions, or nullptr before attachment.
  MetadataManager* metadata_manager() const {
    return manager_.load(std::memory_order_acquire);
  }

  /// Attaches this provider (and, recursively, its modules) to a manager.
  /// Called by QueryGraph when a node is added.
  void AttachMetadataManager(MetadataManager* manager);

  /// Operator-level reentrant read/write lock (paper §4.2): guards the
  /// provider's processing state against concurrent metadata evaluation.
  ReentrantSharedMutex& state_mutex() const
      PIPES_RETURN_CAPABILITY(state_mu_) {
    return state_mu_;
  }

  /// \name Topology hooks for dependency resolution
  /// Nodes override these; modules and standalone providers keep the empty
  /// defaults.
  ///@{
  virtual std::vector<MetadataProvider*> MetadataUpstreams() const { return {}; }
  virtual std::vector<MetadataProvider*> MetadataDownstreams() const { return {}; }
  ///@}

  /// \name Exchangeable modules (paper §4.5)
  ///@{
  /// Registers a named module; the module inherits this provider's manager.
  void RegisterModule(const std::string& name, MetadataProvider* module);
  void UnregisterModule(const std::string& name);
  MetadataProvider* MetadataModule(const std::string& name) const;
  std::vector<std::string> ModuleNames() const;
  ///@}

  /// Fires the manual event notification for item `key` (paper §3.2.3:
  /// "the definition of event notifications enables the developer to fire
  /// triggers manually"). No-op when the item is not included or no manager
  /// is attached.
  void FireMetadataEvent(const MetadataKey& key);

 private:
  static std::atomic<uint64_t> next_id_;

  std::string label_;      // pipes-analyze: unguarded(fixed at construction)
  uint64_t provider_id_;   // pipes-analyze: unguarded(fixed at construction)
  MetadataRegistry registry_;  // pipes-analyze: unguarded(internally synchronized by its own mutex)
  std::atomic<MetadataManager*> manager_{nullptr};
  mutable ReentrantSharedMutex state_mu_{"MetadataProvider::state_mu",
                                         lockorder::kRankOperatorState};
  mutable Mutex modules_mu_{"MetadataProvider::modules_mu",
                            lockorder::kRankModules};
  std::map<std::string, MetadataProvider*> modules_
      PIPES_GUARDED_BY(modules_mu_);
};

}  // namespace pipes
