#include "metadata/value.h"

#include <cstdio>

namespace pipes {

double MetadataValue::AsDouble() const {
  if (is_double()) return std::get<double>(v_);
  if (is_int()) return static_cast<double>(std::get<int64_t>(v_));
  if (is_bool()) return std::get<bool>(v_) ? 1.0 : 0.0;
  return 0.0;
}

int64_t MetadataValue::AsInt() const {
  if (is_int()) return std::get<int64_t>(v_);
  if (is_double()) return static_cast<int64_t>(std::get<double>(v_));
  if (is_bool()) return std::get<bool>(v_) ? 1 : 0;
  return 0;
}

bool MetadataValue::AsBool() const {
  if (is_bool()) return std::get<bool>(v_);
  if (is_int()) return std::get<int64_t>(v_) != 0;
  if (is_double()) return std::get<double>(v_) != 0.0;
  return false;
}

const std::string& MetadataValue::AsString() const {
  static const std::string kEmpty;
  if (is_string()) return *std::get<SharedString>(v_);
  return kEmpty;
}

MetadataValue::SharedString MetadataValue::shared_string() const {
  if (is_string()) return std::get<SharedString>(v_);
  return nullptr;
}

std::string MetadataValue::ToString() const {
  if (is_null()) return "null";
  if (is_bool()) return std::get<bool>(v_) ? "true" : "false";
  if (is_int()) return std::to_string(std::get<int64_t>(v_));
  if (is_double()) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", std::get<double>(v_));
    return buf;
  }
  return *std::get<SharedString>(v_);
}

bool MetadataValue::operator==(const MetadataValue& other) const {
  // Strings compare by content, not by payload identity: two values built
  // from equal text are equal even though their shared payloads differ.
  if (is_string() || other.is_string()) {
    return is_string() && other.is_string() && AsString() == other.AsString();
  }
  return v_ == other.v_;
}

}  // namespace pipes
