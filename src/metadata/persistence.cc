#include "metadata/persistence.h"

#include <dirent.h>
#include <unistd.h>

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>

#include "common/fault_injection.h"
#include "metadata/handler.h"
#include "metadata/provider.h"
#include "metadata/registry.h"

namespace pipes {

const char* DurabilityRecordTypeToString(DurabilityRecordType t) {
  switch (t) {
    case DurabilityRecordType::kDefine:
      return "define";
    case DurabilityRecordType::kUndefine:
      return "undefine";
    case DurabilityRecordType::kSubscribe:
      return "subscribe";
    case DurabilityRecordType::kUnsubscribe:
      return "unsubscribe";
    case DurabilityRecordType::kRetire:
      return "retire";
    case DurabilityRecordType::kValue:
      return "value";
    case DurabilityRecordType::kProviderGone:
      return "provider-gone";
    case DurabilityRecordType::kSnapshotBegin:
      return "snapshot-begin";
    case DurabilityRecordType::kSubscribeCount:
      return "subscribe-count";
    case DurabilityRecordType::kSnapshotEnd:
      return "snapshot-end";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Codecs
// ---------------------------------------------------------------------------

void EncodeValue(RecordEncoder* enc, const MetadataValue& v) {
  if (v.is_null()) {
    enc->PutU8(0);
  } else if (v.is_bool()) {
    enc->PutU8(1);
    enc->PutBool(v.AsBool());
  } else if (v.is_int()) {
    enc->PutU8(2);
    enc->PutI64(v.AsInt());
  } else if (v.is_double()) {
    enc->PutU8(3);
    enc->PutDouble(v.AsDouble());
  } else {
    enc->PutU8(4);
    enc->PutString(v.AsString());
  }
}

bool DecodeValue(RecordDecoder* dec, MetadataValue* out) {
  uint8_t tag = 0;
  if (!dec->GetU8(&tag)) return false;
  switch (tag) {
    case 0:
      *out = MetadataValue::Null();
      return true;
    case 1: {
      bool b = false;
      if (!dec->GetBool(&b)) return false;
      *out = MetadataValue(b);
      return true;
    }
    case 2: {
      int64_t i = 0;
      if (!dec->GetI64(&i)) return false;
      *out = MetadataValue(i);
      return true;
    }
    case 3: {
      double d = 0;
      if (!dec->GetDouble(&d)) return false;
      *out = MetadataValue(d);
      return true;
    }
    case 4: {
      std::string s;
      if (!dec->GetString(&s)) return false;
      *out = MetadataValue(std::move(s));
      return true;
    }
    default:
      return false;
  }
}

DescriptorImage MakeDescriptorImage(const MetadataDescriptor& desc) {
  DescriptorImage img;
  img.key = desc.key();
  img.mechanism = static_cast<uint8_t>(desc.mechanism());
  img.period = desc.period();
  img.static_value = desc.static_value();
  img.has_dynamic_deps = desc.has_dynamic_dependencies();
  for (const DependencySpec& spec : desc.dependency_specs()) {
    DependencySpecImage si;
    si.target = static_cast<uint8_t>(spec.target);
    si.index = spec.index;
    si.module = spec.module;
    // Use the captured label: `spec.provider` may point at a provider that
    // was torn down after the descriptor was defined (checkpoint-after-retire
    // is a legal sequence and must not dereference the stale pointer).
    si.provider_label = spec.provider_label;
    si.key = spec.key;
    img.deps.push_back(std::move(si));
  }
  img.retry = desc.retry_policy();
  img.fallback = desc.fallback_value();
  img.max_staleness = desc.max_staleness();
  img.description = desc.description();
  return img;
}

void EncodeDescriptorImage(RecordEncoder* enc, const DescriptorImage& img) {
  enc->PutString(img.key);
  enc->PutU8(img.mechanism);
  enc->PutI64(img.period);
  EncodeValue(enc, img.static_value);
  enc->PutBool(img.has_dynamic_deps);
  enc->PutU32(static_cast<uint32_t>(img.deps.size()));
  for (const DependencySpecImage& d : img.deps) {
    enc->PutU8(d.target);
    enc->PutU32(static_cast<uint32_t>(d.index));
    enc->PutString(d.module);
    enc->PutString(d.provider_label);
    enc->PutString(d.key);
  }
  enc->PutU32(static_cast<uint32_t>(img.retry.failures_to_degrade));
  enc->PutU32(static_cast<uint32_t>(img.retry.failures_to_quarantine));
  enc->PutU32(static_cast<uint32_t>(img.retry.successes_to_recover));
  enc->PutI64(img.retry.initial_backoff);
  enc->PutDouble(img.retry.backoff_multiplier);
  enc->PutI64(img.retry.max_backoff);
  enc->PutDouble(img.retry.backoff_jitter);
  EncodeValue(enc, img.fallback);
  enc->PutI64(img.max_staleness);
  enc->PutString(img.description);
}

bool DecodeDescriptorImage(RecordDecoder* dec, DescriptorImage* out) {
  uint32_t dep_count = 0;
  uint8_t mech = 0;
  if (!dec->GetString(&out->key)) return false;
  if (!dec->GetU8(&mech)) return false;
  out->mechanism = mech;
  if (!dec->GetI64(&out->period)) return false;
  if (!DecodeValue(dec, &out->static_value)) return false;
  if (!dec->GetBool(&out->has_dynamic_deps)) return false;
  if (!dec->GetU32(&dep_count)) return false;
  // Each spec costs >= 14 encoded bytes; a count past the remaining payload
  // is framing damage, not a huge dependency list.
  if (dep_count > dec->remaining()) return false;
  out->deps.clear();
  out->deps.reserve(dep_count);
  for (uint32_t i = 0; i < dep_count; ++i) {
    DependencySpecImage d;
    uint32_t index = 0;
    if (!dec->GetU8(&d.target)) return false;
    if (!dec->GetU32(&index)) return false;
    d.index = static_cast<int32_t>(index);
    if (!dec->GetString(&d.module)) return false;
    if (!dec->GetString(&d.provider_label)) return false;
    if (!dec->GetString(&d.key)) return false;
    out->deps.push_back(std::move(d));
  }
  uint32_t degrade = 0, quarantine = 0, recover = 0;
  if (!dec->GetU32(&degrade)) return false;
  if (!dec->GetU32(&quarantine)) return false;
  if (!dec->GetU32(&recover)) return false;
  out->retry.failures_to_degrade = static_cast<int>(degrade);
  out->retry.failures_to_quarantine = static_cast<int>(quarantine);
  out->retry.successes_to_recover = static_cast<int>(recover);
  if (!dec->GetI64(&out->retry.initial_backoff)) return false;
  if (!dec->GetDouble(&out->retry.backoff_multiplier)) return false;
  if (!dec->GetI64(&out->retry.max_backoff)) return false;
  if (!dec->GetDouble(&out->retry.backoff_jitter)) return false;
  if (!DecodeValue(dec, &out->fallback)) return false;
  if (!dec->GetI64(&out->max_staleness)) return false;
  if (!dec->GetString(&out->description)) return false;
  return dec->ok();
}

// ---------------------------------------------------------------------------
// Directory helpers
// ---------------------------------------------------------------------------

namespace {

std::string GenerationPath(const std::string& dir, const char* prefix,
                           uint64_t gen) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s-%020" PRIu64, prefix, gen);
  return dir + "/" + buf;
}

/// Generations present as "<prefix>-<digits>" files in `dir`, ascending.
std::vector<uint64_t> ListGenerations(const std::string& dir,
                                      const char* prefix) {
  std::vector<uint64_t> gens;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return gens;
  const std::string want = std::string(prefix) + "-";
  while (dirent* e = ::readdir(d)) {
    std::string name = e->d_name;
    if (name.size() <= want.size() || name.compare(0, want.size(), want) != 0) {
      continue;
    }
    const char* digits = name.c_str() + want.size();
    char* end = nullptr;
    unsigned long long gen = std::strtoull(digits, &end, 10);
    if (end == nullptr || *end != '\0') continue;
    gens.push_back(gen);
  }
  ::closedir(d);
  std::sort(gens.begin(), gens.end());
  return gens;
}

/// Splits a scanned payload into [type][lsn] + a decoder over the body.
bool ParseRecordHead(const std::string& payload, DurabilityRecordType* type,
                     uint64_t* lsn, RecordDecoder* dec) {
  uint8_t t = 0;
  if (!dec->GetU8(&t) || !dec->GetU64(lsn)) return false;
  (void)payload;
  *type = static_cast<DurabilityRecordType>(t);
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// MetadataDurability: journaling
// ---------------------------------------------------------------------------

MetadataDurability::MetadataDurability(MetadataManager& manager,
                                       DurabilityConfig config)
    : manager_(manager), config_(std::move(config)) {}

MetadataDurability::~MetadataDurability() { Stop(); }

std::string MetadataDurability::JournalPath(uint64_t gen) const {
  return GenerationPath(config_.dir, "journal", gen);
}

std::string MetadataDurability::SnapshotPath(uint64_t gen) const {
  return GenerationPath(config_.dir, "snapshot", gen);
}

Status MetadataDurability::Start() {
  if (started_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("durability already started");
  }
  PIPES_RETURN_NOT_OK(MakeDirs(config_.dir));

  // Seed the LSN counter past everything already on disk — replay filters on
  // "lsn > snapshot watermark", so LSNs must stay monotone across restarts.
  uint64_t max_lsn = 0;
  uint64_t max_gen = 0;
  for (uint64_t gen : ListGenerations(config_.dir, "journal")) {
    max_gen = std::max(max_gen, gen);
    Result<JournalScan> scan = ScanJournalFile(JournalPath(gen), kJournalMagic);
    if (!scan.ok()) continue;
    for (const ScannedRecord& rec : scan->records) {
      DurabilityRecordType type;
      uint64_t lsn = 0;
      RecordDecoder dec(rec.payload);
      if (ParseRecordHead(rec.payload, &type, &lsn, &dec)) {
        max_lsn = std::max(max_lsn, lsn);
      }
    }
  }
  for (uint64_t gen : ListGenerations(config_.dir, "snapshot")) {
    max_gen = std::max(max_gen, gen);
    Result<JournalScan> scan =
        ScanJournalFile(SnapshotPath(gen), kSnapshotMagic);
    if (!scan.ok() || scan->records.empty()) continue;
    DurabilityRecordType type;
    uint64_t lsn = 0;
    uint64_t watermark = 0;
    RecordDecoder dec(scan->records.front().payload);
    if (ParseRecordHead(scan->records.front().payload, &type, &lsn, &dec) &&
        type == DurabilityRecordType::kSnapshotBegin &&
        dec.GetU64(&watermark)) {
      max_lsn = std::max(max_lsn, watermark);
    }
  }

  // Never reopen an existing generation (Create truncates): start a fresh
  // one. Replay scans every retained journal, so extra files are only a
  // space cost, never a correctness one.
  uint64_t gen = max_gen + 1;
  Result<std::unique_ptr<JournalWriter>> writer =
      JournalWriter::Create(JournalPath(gen), kJournalMagic, gen);
  if (!writer.ok()) return writer.status();
  {
    MutexLock lock(journal_mu_);
    journal_ = std::move(writer.value());
    next_lsn_ = max_lsn + 1;
    current_generation_ = gen;
  }

  if (config_.fsync_policy == FsyncPolicy::kInterval &&
      config_.fsync_interval > 0) {
    flush_task_ = manager_.scheduler().SchedulePeriodic(
        config_.fsync_interval, [this] { FlushJournal(true); });
  }
  if (config_.checkpoint_period > 0) {
    checkpoint_task_ = manager_.scheduler().SchedulePeriodic(
        config_.checkpoint_period, [this] { CheckpointNow(); });
  }
  started_.store(true, std::memory_order_release);
  return Status::OK();
}

void MetadataDurability::Stop() {
  if (!started_.exchange(false, std::memory_order_acq_rel)) return;
  flush_task_.Cancel();
  checkpoint_task_.Cancel();
  MutexLock lock(journal_mu_);
  if (journal_ != nullptr) {
    Status closed = journal_->Close(true);
    if (!closed.ok()) NoteWriteFailure("journal close", closed);
    journal_.reset();
  }
}

void MetadataDurability::MarkDegraded(const char* what, const Status& st) {
  if (!degraded_.exchange(true, std::memory_order_acq_rel)) {
    std::fprintf(stderr, "[durability] degraded: %s: %s\n", what,
                 st.ToString().c_str());
  }
}

void MetadataDurability::NoteWriteFailure(const char* what, const Status& st) {
  stats_write_failures_.fetch_add(1, std::memory_order_relaxed);
  MarkDegraded(what, st);
}

uint64_t MetadataDurability::AppendRecord(DurabilityRecordType type,
                                          const RecordEncoder& body) {
  MutexLock lock(journal_mu_);
  if (journal_ == nullptr) return 0;
  uint64_t lsn = next_lsn_++;
  scratch_.Clear();
  scratch_.PutU8(static_cast<uint8_t>(type));
  scratch_.PutU64(lsn);
  scratch_.PutBytes(body.buffer());
  Status appended = journal_->Append(scratch_.buffer());
  if (!appended.ok()) {
    // The record is lost but the LSN stays consumed (monotonicity). The
    // caller's mutation already happened in memory; all we can do is make
    // the broken guarantee visible.
    NoteWriteFailure("journal append", appended);
    return lsn;
  }
  stats_records_.fetch_add(1, std::memory_order_relaxed);
  stats_bytes_.fetch_add(scratch_.size() + kFrameHeaderSize,
                         std::memory_order_relaxed);
  switch (config_.fsync_policy) {
    case FsyncPolicy::kEveryRecord:
      FlushLocked(true);
      break;
    case FsyncPolicy::kInterval:
      if (journal_->buffered_bytes() >= config_.group_commit_bytes) {
        FlushLocked(true);
      }
      break;
    case FsyncPolicy::kNone:
      FlushLocked(false);
      break;
  }
  return lsn;
}

Status MetadataDurability::FlushLocked(bool sync) {
  if (journal_ == nullptr) return Status::OK();
  if (journal_->buffered_bytes() == 0) return Status::OK();
  Status st = journal_->Flush(sync);
  if (st.ok()) {
    stats_flushes_.fetch_add(1, std::memory_order_relaxed);
    if (sync) stats_fsyncs_.fetch_add(1, std::memory_order_relaxed);
  } else {
    NoteWriteFailure("journal flush", st);
  }
  return st;
}

Status MetadataDurability::FlushJournal(bool sync) {
  MutexLock lock(journal_mu_);
  return FlushLocked(sync);
}

void MetadataDurability::RegisterProvider(const MetadataProvider* provider) {
  if (provider == nullptr) return;
  MutexLock lock(providers_mu_);
  providers_[provider->label()] = provider;
}

void MetadataDurability::OnDefine(const MetadataProvider& provider,
                                  const MetadataDescriptor& desc) {
  // Journal-only: called while the registry lock (rank 450) is held, so the
  // journal's LSN order matches the registry's mutation order for
  // concurrent Define/Undefine of the same key. Roster registration
  // (providers_mu_, rank 250 — would invert) happens before the registry
  // lock, via MetadataRegistry's pre-registration.
  RecordEncoder body;
  body.PutString(provider.label());
  EncodeDescriptorImage(&body, MakeDescriptorImage(desc));
  AppendRecord(DurabilityRecordType::kDefine, body);
}

void MetadataDurability::OnUndefine(const MetadataProvider& provider,
                                    const MetadataKey& key) {
  // Journal-only, under the registry lock like OnDefine.
  RecordEncoder body;
  body.PutString(provider.label());
  body.PutString(key);
  AppendRecord(DurabilityRecordType::kUndefine, body);
}

void MetadataDurability::OnSubscribe(const MetadataProvider& provider,
                                     const MetadataKey& key) {
  RegisterProvider(&provider);
  RecordEncoder body;
  body.PutString(provider.label());
  body.PutString(key);
  AppendRecord(DurabilityRecordType::kSubscribe, body);
}

void MetadataDurability::OnUnsubscribe(const MetadataProvider& provider,
                                       const MetadataKey& key) {
  // Journal-only (no providers_mu_): called under the exclusive structure
  // lock like OnSubscribe, but the provider is necessarily registered.
  RecordEncoder body;
  body.PutString(provider.label());
  body.PutString(key);
  AppendRecord(DurabilityRecordType::kUnsubscribe, body);
}

void MetadataDurability::OnRetire(const MetadataProvider& provider,
                                  const MetadataKey& key) {
  // Journal-only: Retire fires on teardown paths that may hold handler
  // locks; providers_mu_ (rank 250) must not nest inside them.
  RecordEncoder body;
  body.PutString(provider.label());
  body.PutString(key);
  AppendRecord(DurabilityRecordType::kRetire, body);
}

void MetadataDurability::OnValue(const MetadataProvider& provider,
                                 const MetadataKey& key,
                                 const MetadataValue& value, Timestamp now) {
  // Journal-only: called under the handler's value_mu (rank 560); only
  // journal_mu_ (580) may nest inside it. Timestamps persist as wall-clock
  // micros so staleness survives a restart with a different clock origin.
  RecordEncoder body;
  body.PutString(provider.label());
  body.PutString(key);
  EncodeValue(&body, value);
  body.PutI64(manager_.clock().ToWallMicros(now));
  AppendRecord(DurabilityRecordType::kValue, body);
}

void MetadataDurability::OnProviderTeardown(const MetadataProvider& provider) {
  {
    MutexLock lock(providers_mu_);
    auto it = providers_.find(provider.label());
    // Only deregister the same instance: a provider re-created under the
    // same label must not be dropped by its predecessor's teardown.
    if (it != providers_.end() && it->second == &provider) {
      providers_.erase(it);
    }
  }
  RecordEncoder body;
  body.PutString(provider.label());
  AppendRecord(DurabilityRecordType::kProviderGone, body);
}

// ---------------------------------------------------------------------------
// Checkpoint
// ---------------------------------------------------------------------------

namespace {

/// Appends one snapshot record frame. Snapshot records reuse the journal
/// payload layout with the gather watermark in the LSN slot.
void AppendSnapshotRecord(std::string* out, DurabilityRecordType type,
                          uint64_t watermark, const RecordEncoder& body) {
  RecordEncoder rec;
  rec.PutU8(static_cast<uint8_t>(type));
  rec.PutU64(watermark);
  rec.PutBytes(body.buffer());
  AppendFrame(out, rec.buffer());
}

}  // namespace

Status MetadataDurability::CheckpointNow() {
  if (!started_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("durability not started");
  }
  Timestamp t0 = manager_.clock().Now();
  MutexLock ckpt(ckpt_mu_);
  Status st = CheckpointLocked(t0);
  if (st.ok()) {
    stats_checkpoints_.fetch_add(1, std::memory_order_relaxed);
    stats_checkpoint_duration_.store(manager_.clock().Now() - t0,
                                     std::memory_order_relaxed);
  } else {
    // Count + latch here so the periodic checkpoint task (which has nowhere
    // to return the status to) still surfaces every failure.
    stats_checkpoint_failures_.fetch_add(1, std::memory_order_relaxed);
    MarkDegraded("checkpoint", st);
  }
  return st;
}

Status MetadataDurability::CheckpointLocked(Timestamp t0) {
  uint64_t watermark = 0;
  uint64_t new_gen = 0;
  std::string content;
  uint64_t record_count = 0;
  {
    // Shared structure lock for the whole gather: Subscribe/Unsubscribe
    // journal under the *exclusive* lock, so every count record is either
    // <= watermark (its effect visible to this gather) or > watermark
    // (replayed on top). Without this the same subscription could be both
    // counted and replayed.
    SharedLock structure(manager_.structure_mutex());
    // providers_mu_ is held for the whole roster walk, not just a copy:
    // a provider dying concurrently blocks in ~MetadataProvider ->
    // OnProviderTeardown on this mutex before its registry (a base-class
    // member, destroyed after the destructor body) goes away, so the
    // registry/handler dereferences below can never touch freed memory.
    MutexLock p(providers_mu_);
    {
      MutexLock j(journal_mu_);
      watermark = next_lsn_ - 1;
      new_gen = current_generation_ + 1;
    }

    AppendFileHeader(&content, kSnapshotMagic, new_gen);
    {
      RecordEncoder body;
      body.PutU64(watermark);
      body.PutI64(manager_.clock().ToWallMicros(t0));
      AppendSnapshotRecord(&content, DurabilityRecordType::kSnapshotBegin,
                           watermark, body);
      ++record_count;
    }
    for (const auto& entry : providers_) {
      const MetadataProvider* provider = entry.second;
      const MetadataRegistry& registry = provider->metadata_registry();
      for (const MetadataKey& key : registry.AvailableKeys()) {
        std::shared_ptr<const MetadataDescriptor> desc = registry.Find(key);
        if (desc == nullptr) continue;
        RecordEncoder body;
        body.PutString(provider->label());
        EncodeDescriptorImage(&body, MakeDescriptorImage(*desc));
        AppendSnapshotRecord(&content, DurabilityRecordType::kDefine,
                             watermark, body);
        ++record_count;
      }
      for (const MetadataKey& key : registry.IncludedKeys()) {
        std::shared_ptr<MetadataHandler> handler = registry.GetHandler(key);
        if (handler == nullptr || handler->retired()) continue;
        if (handler->external_refs() > 0) {
          RecordEncoder body;
          body.PutString(provider->label());
          body.PutString(key);
          body.PutU32(static_cast<uint32_t>(handler->external_refs()));
          AppendSnapshotRecord(&content,
                               DurabilityRecordType::kSubscribeCount,
                               watermark, body);
          ++record_count;
        }
        MetadataValue value = MetadataManager::LoadHandlerValue(*handler);
        Timestamp updated = handler->last_updated();
        if (!value.is_null() && updated != kTimestampNever) {
          RecordEncoder body;
          body.PutString(provider->label());
          body.PutString(key);
          EncodeValue(&body, value);
          body.PutI64(manager_.clock().ToWallMicros(updated));
          AppendSnapshotRecord(&content, DurabilityRecordType::kValue,
                               watermark, body);
          ++record_count;
        }
      }
    }
    {
      RecordEncoder body;
      body.PutU64(record_count + 1);  // including the end record itself
      AppendSnapshotRecord(&content, DurabilityRecordType::kSnapshotEnd,
                           watermark, body);
    }
  }

  KillPoint("checkpoint.before_snapshot");
  PIPES_RETURN_NOT_OK(WriteFileDurably(SnapshotPath(new_gen), content));
  KillPoint("checkpoint.before_rotate");
  {
    MutexLock j(journal_mu_);
    PIPES_RETURN_NOT_OK(FlushLocked(true));
    // Open the new generation *before* closing the old one: if Create fails
    // (ENOSPC, ...) the old journal stays installed and open, so mutations
    // keep journaling — the failure degrades to "stale snapshot horizon",
    // never to silently-unjournaled. The early return also skips pruning,
    // so nothing replay needs is unlinked after a partial rotation.
    Result<std::unique_ptr<JournalWriter>> writer =
        JournalWriter::Create(JournalPath(new_gen), kJournalMagic, new_gen);
    if (!writer.ok()) return writer.status();
    if (journal_ != nullptr) {
      // The buffer was flushed+fsynced above, so a close failure cannot
      // drop records; still worth counting.
      Status closed = journal_->Close(true);
      if (!closed.ok()) NoteWriteFailure("journal rotation close", closed);
    }
    journal_ = std::move(writer.value());
    current_generation_ = new_gen;
  }
  KillPoint("checkpoint.after_rotate");

  // Prune: keep the newest `snapshot_generations_kept` snapshots, and every
  // journal generation >= (oldest kept snapshot - 1). A snapshot's
  // stragglers — records with lsn > watermark appended between its gather
  // and the rotation — live in the *previous* journal generation, hence the
  // -1 horizon.
  int keep = std::max(2, config_.snapshot_generations_kept);
  std::vector<uint64_t> snapshots = ListGenerations(config_.dir, "snapshot");
  uint64_t min_kept_snapshot = new_gen;
  if (snapshots.size() > static_cast<size_t>(keep)) {
    for (size_t i = 0; i + keep < snapshots.size(); ++i) {
      ::unlink(SnapshotPath(snapshots[i]).c_str());
    }
    snapshots.erase(snapshots.begin(), snapshots.end() - keep);
  }
  if (!snapshots.empty()) min_kept_snapshot = snapshots.front();
  uint64_t journal_horizon =
      min_kept_snapshot > 0 ? min_kept_snapshot - 1 : 0;
  for (uint64_t gen : ListGenerations(config_.dir, "journal")) {
    if (gen < journal_horizon) ::unlink(JournalPath(gen).c_str());
  }
  // Makes the unlinks and the new journal's directory entry durable; on
  // failure the checkpoint is reported failed (and counted by the caller)
  // even though the snapshot file itself landed.
  PIPES_RETURN_NOT_OK(SyncDir(config_.dir));
  return Status::OK();
}

DurabilityStats MetadataDurability::stats() const {
  DurabilityStats s;
  s.journal_records = stats_records_.load(std::memory_order_relaxed);
  s.journal_bytes = stats_bytes_.load(std::memory_order_relaxed);
  s.fsyncs = stats_fsyncs_.load(std::memory_order_relaxed);
  s.group_flushes = stats_flushes_.load(std::memory_order_relaxed);
  s.checkpoints = stats_checkpoints_.load(std::memory_order_relaxed);
  s.last_checkpoint_duration =
      stats_checkpoint_duration_.load(std::memory_order_relaxed);
  s.journal_write_failures =
      stats_write_failures_.load(std::memory_order_relaxed);
  s.checkpoint_failures =
      stats_checkpoint_failures_.load(std::memory_order_relaxed);
  s.degraded = degraded_.load(std::memory_order_acquire);
  MutexLock lock(journal_mu_);
  s.current_generation = current_generation_;
  return s;
}

// ---------------------------------------------------------------------------
// Recovery
// ---------------------------------------------------------------------------

namespace {

/// Accumulated image of one metadata item while folding snapshot + journals.
struct ItemImage {
  bool defined = false;
  DescriptorImage desc;
  uint32_t sub_count = 0;
  bool has_value = false;
  MetadataValue value;
  int64_t wall_ts = 0;
};

using ProviderImage = std::map<std::string, ItemImage>;  // by key
using RecoveryImage = std::map<std::string, ProviderImage>;  // by label

/// Applies one record to the image. Returns false on undecodable bodies.
bool ApplyRecord(RecoveryImage* image, DurabilityRecordType type,
                 RecordDecoder* dec) {
  switch (type) {
    case DurabilityRecordType::kDefine: {
      std::string label;
      DescriptorImage desc;
      if (!dec->GetString(&label)) return false;
      if (!DecodeDescriptorImage(dec, &desc)) return false;
      ItemImage& item = (*image)[label][desc.key];
      item.defined = true;
      item.desc = std::move(desc);
      return true;
    }
    case DurabilityRecordType::kUndefine: {
      std::string label, key;
      if (!dec->GetString(&label) || !dec->GetString(&key)) return false;
      auto it = image->find(label);
      if (it != image->end()) it->second.erase(key);
      return true;
    }
    case DurabilityRecordType::kSubscribe: {
      std::string label, key;
      if (!dec->GetString(&label) || !dec->GetString(&key)) return false;
      (*image)[label][key].sub_count += 1;
      return true;
    }
    case DurabilityRecordType::kUnsubscribe: {
      std::string label, key;
      if (!dec->GetString(&label) || !dec->GetString(&key)) return false;
      ItemImage& item = (*image)[label][key];
      if (item.sub_count > 0) item.sub_count -= 1;
      return true;
    }
    case DurabilityRecordType::kRetire: {
      // A retired handler is frozen for good; recovery must not resurrect
      // its subscriptions (the owner was being torn down).
      std::string label, key;
      if (!dec->GetString(&label) || !dec->GetString(&key)) return false;
      (*image)[label][key].sub_count = 0;
      return true;
    }
    case DurabilityRecordType::kValue: {
      std::string label, key;
      MetadataValue value;
      int64_t wall_ts = 0;
      if (!dec->GetString(&label) || !dec->GetString(&key)) return false;
      if (!DecodeValue(dec, &value)) return false;
      if (!dec->GetI64(&wall_ts)) return false;
      ItemImage& item = (*image)[label][key];
      item.has_value = true;
      item.value = std::move(value);
      item.wall_ts = wall_ts;
      return true;
    }
    case DurabilityRecordType::kProviderGone: {
      std::string label;
      if (!dec->GetString(&label)) return false;
      image->erase(label);
      return true;
    }
    case DurabilityRecordType::kSubscribeCount: {
      std::string label, key;
      uint32_t count = 0;
      if (!dec->GetString(&label) || !dec->GetString(&key)) return false;
      if (!dec->GetU32(&count)) return false;
      (*image)[label][key].sub_count = count;
      return true;
    }
    case DurabilityRecordType::kSnapshotBegin:
    case DurabilityRecordType::kSnapshotEnd:
      return true;  // structural markers, no image effect
  }
  return false;
}

/// A snapshot scan is usable iff framing and bracketing are intact.
bool SnapshotComplete(const JournalScan& scan, uint64_t* watermark) {
  if (!scan.header_ok || scan.torn_tail || scan.corrupt_records > 0 ||
      scan.records.size() < 2) {
    return false;
  }
  DurabilityRecordType type;
  uint64_t lsn = 0;
  {
    RecordDecoder dec(scan.records.front().payload);
    if (!ParseRecordHead(scan.records.front().payload, &type, &lsn, &dec) ||
        type != DurabilityRecordType::kSnapshotBegin ||
        !dec.GetU64(watermark)) {
      return false;
    }
  }
  RecordDecoder dec(scan.records.back().payload);
  uint64_t declared = 0;
  if (!ParseRecordHead(scan.records.back().payload, &type, &lsn, &dec) ||
      type != DurabilityRecordType::kSnapshotEnd || !dec.GetU64(&declared)) {
    return false;
  }
  return declared == scan.records.size();
}

/// Builds the shell/static descriptor recovery defines for one item.
MetadataDescriptor BuildRecoveredDescriptor(
    const std::string& label, const ItemImage& item,
    const std::map<std::string, MetadataProvider*>& by_label,
    bool* is_shell) {
  const DescriptorImage& img = item.desc;
  UpdateMechanism mechanism = static_cast<UpdateMechanism>(img.mechanism);
  *is_shell = mechanism != UpdateMechanism::kStatic;
  MetadataDescriptor desc = [&] {
    switch (mechanism) {
      case UpdateMechanism::kStatic:
        return MetadataDescriptor::Static(img.key, img.static_value);
      case UpdateMechanism::kOnDemand:
        return MetadataDescriptor::OnDemand(img.key);
      case UpdateMechanism::kPeriodic:
        return MetadataDescriptor::Periodic(img.key, img.period);
      case UpdateMechanism::kTriggered:
        return MetadataDescriptor::Triggered(img.key);
    }
    return MetadataDescriptor::OnDemand(img.key);
  }();
  // The fluent setters mutate in place and return the descriptor as an
  // rvalue; the returns are discarded so the setters compose with the
  // conditionals below.
  if (*is_shell) {
    std::string key = img.key;
    (void)std::move(desc).WithEvaluator(
        [label, key](EvalContext&) -> MetadataValue {
          throw RecoveryPendingError(label, key);
        });
  }
  // Dynamic resolvers are code and cannot be persisted: such items come
  // back dependency-less (has_dynamic_deps documents why).
  if (!img.deps.empty() && !img.has_dynamic_deps) {
    std::vector<DependencySpec> specs;
    for (const DependencySpecImage& d : img.deps) {
      DependencySpec spec;
      spec.target = static_cast<DependencySpec::Target>(d.target);
      spec.index = d.index;
      spec.module = d.module;
      spec.key = d.key;
      if (spec.target == DependencySpec::Target::kExplicit) {
        auto it = by_label.find(d.provider_label);
        if (it == by_label.end()) continue;  // unresolvable explicit target
        spec.provider = it->second;
        spec.provider_label = d.provider_label;
      }
      specs.push_back(std::move(spec));
    }
    if (!specs.empty()) (void)std::move(desc).DependsOn(std::move(specs));
  }
  (void)std::move(desc).WithRetryPolicy(item.desc.retry);
  if (!img.fallback.is_null()) {
    (void)std::move(desc).WithFallbackValue(img.fallback);
  }
  if (img.max_staleness > 0) {
    (void)std::move(desc).WithMaxStaleness(img.max_staleness);
  }
  if (!img.description.empty()) {
    (void)std::move(desc).WithDescription(img.description);
  }
  if (*is_shell) (void)std::move(desc).AsRecoveredShell();
  return desc;
}

}  // namespace

Result<RecoveryReport> MetadataDurability::Recover(
    MetadataManager& manager, const std::string& dir,
    const std::vector<MetadataProvider*>& providers) {
  Timestamp t0 = manager.clock().Now();
  RecoveryReport report;
  RecoveryImage image;
  uint64_t watermark = 0;

  // Newest complete snapshot wins; a damaged newest falls back one
  // generation (the previous snapshot plus the journals covering the gap
  // reconstruct the same state).
  std::vector<uint64_t> snapshots = ListGenerations(dir, "snapshot");
  bool skipped_newer = false;
  for (auto it = snapshots.rbegin(); it != snapshots.rend(); ++it) {
    Result<JournalScan> scan =
        ScanJournalFile(GenerationPath(dir, "snapshot", *it), kSnapshotMagic);
    uint64_t candidate_watermark = 0;
    if (!scan.ok() || !SnapshotComplete(*scan, &candidate_watermark)) {
      skipped_newer = true;
      continue;
    }
    for (const ScannedRecord& rec : scan->records) {
      DurabilityRecordType type;
      uint64_t lsn = 0;
      RecordDecoder dec(rec.payload);
      if (!ParseRecordHead(rec.payload, &type, &lsn, &dec)) continue;
      ApplyRecord(&image, type, &dec);
    }
    watermark = candidate_watermark;
    report.snapshot_generation = *it;
    report.used_fallback_snapshot = skipped_newer;
    break;
  }

  // Replay every retained journal in generation order, filtered by the
  // watermark: records already reflected in the snapshot are skipped by
  // LSN, so overlap between a snapshot and its predecessor journals is
  // harmless. Torn tails are truncated on disk — a half-written frame must
  // not resurface as data on the next scan.
  for (uint64_t gen : ListGenerations(dir, "journal")) {
    std::string path = GenerationPath(dir, "journal", gen);
    Result<JournalScan> scan = ScanJournalFile(path, kJournalMagic);
    if (!scan.ok()) continue;
    if (!scan->header_ok) {
      report.corrupt_records_skipped += 1;
      continue;
    }
    report.corrupt_records_skipped += scan->corrupt_records;
    if (scan->torn_tail) {
      report.torn_bytes_truncated += scan->file_bytes - scan->valid_bytes;
      TruncateFileTo(path, scan->valid_bytes);
    }
    for (const ScannedRecord& rec : scan->records) {
      DurabilityRecordType type;
      uint64_t lsn = 0;
      RecordDecoder dec(rec.payload);
      if (!ParseRecordHead(rec.payload, &type, &lsn, &dec)) {
        report.corrupt_records_skipped += 1;
        continue;
      }
      if (lsn <= watermark) continue;
      if (!ApplyRecord(&image, type, &dec)) {
        report.corrupt_records_skipped += 1;
        continue;
      }
      report.journal_records_replayed += 1;
    }
  }

  // Phase A: definitions. Items the application already re-defined keep the
  // application's (real) descriptor; everything else is defined from the
  // image — statics with their real value, the rest as recovered shells.
  std::map<std::string, MetadataProvider*> by_label;
  for (MetadataProvider* p : providers) {
    if (p != nullptr) by_label[p->label()] = p;
  }
  for (const auto& [label, items] : image) {
    auto found = by_label.find(label);
    if (found == by_label.end()) {
      if (!items.empty()) report.unresolved_providers.push_back(label);
      continue;
    }
    MetadataProvider* provider = found->second;
    if (provider->metadata_manager() == nullptr) {
      provider->AttachMetadataManager(&manager);
    }
    for (const auto& [key, item] : items) {
      if (!item.defined) continue;
      if (provider->metadata_registry().IsAvailable(key)) continue;
      bool is_shell = false;
      MetadataDescriptor desc =
          BuildRecoveredDescriptor(label, item, by_label, &is_shell);
      if (!provider->metadata_registry().Define(std::move(desc)).ok()) {
        continue;
      }
      report.definitions_restored += 1;
      if (is_shell) report.shells_defined += 1;
    }
  }

  // Phase B: subscriptions, through the ordinary Subscribe path so the
  // dependency graph, handlers, and wave plans rebuild exactly as they
  // would have for live consumers. The report owns the subscriptions.
  for (const auto& [label, items] : image) {
    auto found = by_label.find(label);
    if (found == by_label.end()) continue;
    MetadataProvider* provider = found->second;
    for (const auto& [key, item] : items) {
      if (!item.defined || item.sub_count == 0) continue;
      if (!provider->metadata_registry().IsAvailable(key)) continue;
      for (uint32_t i = 0; i < item.sub_count; ++i) {
        Result<MetadataSubscription> sub = manager.Subscribe(*provider, key);
        if (!sub.ok()) break;
        report.subscriptions.push_back(std::move(sub.value()));
        report.subscriptions_restored += 1;
      }
    }
  }

  // Phase C: last-known-good values, injected only where activation did not
  // already produce one (shells throw; statics re-store their value). The
  // persisted wall-clock timestamp maps into the live clock's domain, so
  // staleness reflects true age across the restart.
  for (const auto& [label, items] : image) {
    auto found = by_label.find(label);
    if (found == by_label.end()) continue;
    MetadataProvider* provider = found->second;
    for (const auto& [key, item] : items) {
      if (!item.has_value) continue;
      std::shared_ptr<MetadataHandler> handler =
          provider->metadata_registry().GetHandler(key);
      if (handler == nullptr) continue;
      if (!MetadataManager::LoadHandlerValue(*handler).is_null()) continue;
      Timestamp ts = manager.clock().FromWallMicros(item.wall_ts);
      manager.InjectRecoveredValue(*handler, item.value, ts);
      report.values_restored += 1;
    }
  }

  report.recovery_duration = manager.clock().Now() - t0;
  return report;
}

}  // namespace pipes
