/// \file remote.h
/// \brief Metadata federation: remote subscriptions over a net::Endpoint
/// (paper §3.2.3, inter-node update propagation).
///
/// The paper's dependency graph spans nodes; this layer lets it span
/// *processes*. A `MetadataFederationServer` exports a manager's providers:
/// each remote subscription becomes an ordinary local triggered item (keyed
/// per peer) whose evaluator pushes the new value over the wire — so remote
/// fan-out rides the same inclusion, wave-propagation, and storm-damping
/// machinery as local dependents. A `RemoteMetadataProvider` mirrors one
/// peer provider into the local manager: mirrored items are real local
/// items (subscribable, includable, wave origins), updated by
/// sequence-numbered pushes. The sequence numbers give cross-link
/// duplicate-notification suppression: a duplicated or reordered frame
/// whose seq is not newer than the last applied one is counted and dropped
/// before any local wave fires, so downstream handlers never observe a
/// duplicate notification.
///
/// Robustness model (the headline):
///  - heartbeat failure detection: a periodic heartbeat/ack exchange drives
///    the peer's health through the same healthy → degraded → quarantined
///    machine handlers use;
///  - circuit breaker: a quarantined peer stops heartbeating at cadence and
///    probes with jittered exponential backoff instead;
///  - request retries: subscribe requests time out and retry with jittered
///    exponential backoff;
///  - reconnect + reconciliation: the first ack from a quarantined peer
///    closes the breaker and resubscribes every mirror with its last-seen
///    sequence, so the server re-sends exactly the values that are newer;
///  - partition-mode serving: while the link is down, mirrored items keep
///    serving their last-known-good value with *true*, growing staleness —
///    value timestamps cross the wire wall-anchored (pipes::Clock), so
///    staleness survives the process boundary.

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/rng.h"
#include "common/scheduler.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/types.h"
#include "metadata/handler.h"
#include "metadata/manager.h"
#include "metadata/provider.h"
#include "net/transport.h"

namespace pipes {

/// \name Federation frame types (net::Frame::type)
///@{
inline constexpr uint32_t kFrameSubscribeReq = 1;  ///< seq = last-seen
inline constexpr uint32_t kFrameSubscribeAck = 2;
inline constexpr uint32_t kFrameUpdatePush = 3;    ///< seq = item sequence
inline constexpr uint32_t kFrameHeartbeat = 4;
inline constexpr uint32_t kFrameHeartbeatAck = 5;  ///< seq echoed
inline constexpr uint32_t kFrameUnsubscribe = 6;
///@}

/// \brief Tuning of a RemoteMetadataProvider's failure detection and retry
/// machinery. Defaults suit virtual-time tests (milliseconds).
struct FederationOptions {
  /// Heartbeat cadence while the peer is not quarantined.
  Duration heartbeat_period = 50 * kMicrosPerMilli;
  /// Missed-heartbeat windows (multiples of heartbeat_period without an
  /// ack) after which the peer is degraded / quarantined.
  int misses_to_degrade = 2;
  int misses_to_quarantine = 4;
  /// Subscribe-request timeout before a retry is sent.
  Duration request_timeout = 20 * kMicrosPerMilli;
  /// Retry/probe backoff: initial delay, growth factor, ceiling, and the
  /// ± jitter fraction applied to every delay (decorrelates peers that
  /// quarantined on the same fault).
  Duration initial_backoff = 10 * kMicrosPerMilli;
  double backoff_multiplier = 2.0;
  Duration max_backoff = kMicrosPerSecond;
  double backoff_jitter = 0.2;
  /// A healthy mirror whose value is older than this re-fetches on the next
  /// heartbeat tick (bounds staleness under silent message loss).
  /// 0 = 2 x heartbeat_period.
  Duration resync_after = 0;
  /// Seed of the provider's private jitter RNG (deterministic tests).
  uint64_t rng_seed = 0xFEDBEEFULL;
};

/// \brief Counters describing one peer link, for monitoring and tests.
struct PeerStats {
  HandlerHealth health = HandlerHealth::kHealthy;
  uint64_t heartbeats_sent = 0;
  uint64_t heartbeat_acks = 0;
  uint64_t probes = 0;       ///< breaker-open probe heartbeats
  uint64_t retries = 0;      ///< subscribe-request retries
  uint64_t reconnects = 0;   ///< breaker closes (quarantined -> healthy)
  uint64_t resyncs = 0;      ///< staleness-triggered re-fetches
  uint64_t pushes_applied = 0;
  uint64_t duplicates_suppressed = 0;
  Duration lag = 0;          ///< now - last ack (the failure-detector input)
};

/// \brief Per-mirror counters (sequence cursor and suppression evidence).
struct MirrorStats {
  uint64_t last_seen_seq = 0;
  uint64_t pushes_applied = 0;
  uint64_t duplicates_suppressed = 0;
  uint64_t resubscribes = 0;
  /// Local-timeline update time of the last applied value (kTimestampNever
  /// before the first one). Staleness = now - last_value_ts.
  Timestamp last_value_ts = kTimestampNever;
  Duration max_staleness = 0;  ///< configured serving bound (0 = none)
};

/// \brief Local proxy for one remote provider: mirrors its items into the
/// local MetadataManager over an Endpoint.
///
/// Mirror(key, ...) defines a local triggered item under this provider and
/// keeps it included; sequence-numbered pushes from the peer update it and
/// start ordinary local propagation waves. Consumers subscribe to mirrored
/// items exactly like local ones (and may declare dependencies on them via
/// DependencySpec::Explicit).
class RemoteMetadataProvider : public MetadataProvider {
 public:
  /// `remote_label` names the peer provider being mirrored (the topic
  /// prefix). `endpoint` must outlive this provider; its receiver is taken
  /// over. Starts the heartbeat immediately.
  RemoteMetadataProvider(std::string remote_label, MetadataManager& manager,
                         net::Endpoint& endpoint, FederationOptions options = {});
  ~RemoteMetadataProvider() override;

  /// \brief Mirrors remote item `key`: defines the local proxy item, holds
  /// it included, and subscribes over the wire (with timeout/retry).
  ///
  /// `max_staleness` bounds partition-mode serving: the mirror keeps serving
  /// last-known-good while the link is down, and the staleness-triggered
  /// resync re-fetches once the value ages past the resync threshold.
  /// `fallback` (optional) is served before the first value arrives.
  Status Mirror(const MetadataKey& key, Duration max_staleness = 0,
                MetadataValue fallback = MetadataValue());

  /// Stops mirroring `key`: sends an unsubscribe and retires the local item
  /// once external subscribers are gone.
  void Unmirror(const MetadataKey& key);

  /// The peer provider label this proxy mirrors.
  const std::string& remote_label() const { return remote_label_; }

  /// Health of the peer link (the circuit-breaker state).
  HandlerHealth health() const;

  /// Failure-detector lag: now - last ack from the peer.
  Duration lag(Timestamp now) const;

  /// Snapshot of link counters.
  PeerStats peer_stats() const;

  /// Snapshot of one mirror's counters; NotFound when `key` is not mirrored.
  Result<MirrorStats> mirror_stats(const MetadataKey& key) const;

  /// Staleness of the mirrored value for `key` at `now` (a very large value
  /// before the first applied update). NotFound when not mirrored.
  Result<Duration> mirror_staleness(const MetadataKey& key,
                                    Timestamp now) const;

 private:
  struct MirrorState {
    MetadataKey key;
    std::string topic;  ///< "<remote_label>/<key>"
    uint64_t last_seen = 0;
    uint64_t applied = 0;
    uint64_t suppressed = 0;
    uint64_t resubscribes = 0;
    Timestamp last_value_ts = kTimestampNever;
    Duration max_staleness = 0;
    bool pending = false;       ///< subscribe in flight, awaiting ack
    uint64_t attempt = 0;       ///< invalidates stale retry tasks
    Duration retry_backoff = 0;
    TaskHandle retry_task;
    /// The proxy item's handler, pinned by the internal subscription.
    MetadataSubscription internal_sub;
  };

  void HandleFrame(const net::Frame& frame);
  void HandleSubscribeAck(const net::Frame& frame, Timestamp now);
  void HandleUpdatePush(const net::Frame& frame, Timestamp now);

  /// Applies one remote update if its sequence is new; returns the handler
  /// to propagate from (null when suppressed). Updates the mirror cursor
  /// and injects the value while still holding fed_mu_, so concurrent
  /// deliveries apply in sequence order; the wave itself runs unlocked.
  std::shared_ptr<MetadataHandler> ApplyLocked(MirrorState& m, uint64_t seq,
                                               int64_t wall_ts,
                                               const MetadataValue& value,
                                               Timestamp now)
      PIPES_REQUIRES(fed_mu_);

  /// Sends the subscribe request for `m` and schedules the timeout retry.
  void SendSubscribeLocked(MirrorState& m) PIPES_REQUIRES(fed_mu_);
  void RetrySubscribe(const MetadataKey& key, uint64_t attempt);

  /// An ack of any kind proves the link: resets the failure detector and,
  /// when the breaker was open, closes it and reconciles every mirror.
  void NoteLinkAliveLocked(Timestamp now) PIPES_REQUIRES(fed_mu_);

  void HeartbeatTick();
  void ProbeTick();
  void ScheduleProbeLocked() PIPES_REQUIRES(fed_mu_);

  /// `d` ± the configured jitter fraction (floor 1 µs).
  Duration JitteredLocked(Duration d) PIPES_REQUIRES(fed_mu_);

  MetadataManager& manager_;
  net::Endpoint& endpoint_;
  const std::string remote_label_;
  const FederationOptions options_;

  /// Per-peer federation state. Ranks above the structure lock: held while
  /// injecting values (handler value lock) and while scheduling; released
  /// before propagation waves run.
  mutable Mutex fed_mu_{"RemoteMetadataProvider::fed_mu",
                        lockorder::kRankFederation};
  std::unordered_map<MetadataKey, MirrorState> mirrors_ PIPES_GUARDED_BY(fed_mu_);
  HandlerHealth health_ PIPES_GUARDED_BY(fed_mu_) = HandlerHealth::kHealthy;
  Timestamp last_ack_at_ PIPES_GUARDED_BY(fed_mu_) = 0;
  uint64_t hb_seq_ PIPES_GUARDED_BY(fed_mu_) = 0;
  Duration probe_backoff_ PIPES_GUARDED_BY(fed_mu_) = 0;
  TaskHandle heartbeat_task_ PIPES_GUARDED_BY(fed_mu_);
  TaskHandle probe_task_ PIPES_GUARDED_BY(fed_mu_);
  Rng rng_ PIPES_GUARDED_BY(fed_mu_);
  bool closed_ PIPES_GUARDED_BY(fed_mu_) = false;

  // Link counters (see PeerStats).
  uint64_t stats_heartbeats_ PIPES_GUARDED_BY(fed_mu_) = 0;
  uint64_t stats_acks_ PIPES_GUARDED_BY(fed_mu_) = 0;
  uint64_t stats_probes_ PIPES_GUARDED_BY(fed_mu_) = 0;
  uint64_t stats_retries_ PIPES_GUARDED_BY(fed_mu_) = 0;
  uint64_t stats_reconnects_ PIPES_GUARDED_BY(fed_mu_) = 0;
  uint64_t stats_resyncs_ PIPES_GUARDED_BY(fed_mu_) = 0;
};

/// \brief Counters describing a federation server's activity.
struct FederationServerStats {
  uint64_t subscribe_requests = 0;
  uint64_t subscribe_rejects = 0;  ///< unknown provider/key
  uint64_t pushes_sent = 0;
  uint64_t heartbeats_answered = 0;
  uint64_t exports_active = 0;  ///< live per-peer export items (gauge)
};

/// \brief Serves a manager's metadata to remote peers.
///
/// Each remote subscription becomes a per-peer *export item*: a local
/// triggered item depending on the exported (provider, key) whose evaluator
/// pushes the refreshed value (sequence-numbered, wall-anchored) to the
/// peer. Because the export item is an ordinary dependent, triggered waves
/// from the exported item — including storm-damped and deferred ones —
/// drive remote pushes with no federation-specific hooks in the wave path.
class MetadataFederationServer {
 public:
  explicit MetadataFederationServer(MetadataManager& manager);
  ~MetadataFederationServer();

  MetadataFederationServer(const MetadataFederationServer&) = delete;
  MetadataFederationServer& operator=(const MetadataFederationServer&) = delete;

  /// Makes `provider`'s items subscribable by peers, addressed by label.
  /// The provider must outlive the server.
  Status ExportProvider(MetadataProvider& provider);

  /// Starts serving `endpoint` (takes over its receiver). One server may
  /// serve several endpoints; per-peer export items keep their sequence
  /// streams independent. The endpoint must outlive the server.
  void Serve(net::Endpoint& endpoint);

  /// Snapshot of activity counters.
  FederationServerStats stats() const;

 private:
  /// Wall-anchored sequence state shared with one export evaluator.
  struct PushState {
    std::atomic<uint64_t> seq{0};
    std::atomic<int64_t> wall_ts{0};
  };
  struct Export {
    MetadataSubscription sub;  ///< pins the export item (and its upstream)
    std::shared_ptr<PushState> push;
    std::string topic;
  };

  void HandleFrame(net::Endpoint* endpoint, uint64_t peer_id,
                   const net::Frame& frame);
  void HandleSubscribe(net::Endpoint* endpoint, uint64_t peer_id,
                       const net::Frame& frame);

  MetadataManager& manager_;
  /// Owner of the per-peer export items.
  MetadataProvider exports_provider_{"__federation__"};  // pipes-analyze: unguarded(internally synchronized by its registry's own mutex)

  /// Server-side federation state (peer roster, export table). Same rank as
  /// the client lock: held while defining/subscribing export items.
  mutable Mutex server_mu_{"MetadataFederationServer::server_mu",
                           lockorder::kRankFederation};
  std::unordered_map<std::string, MetadataProvider*> exported_
      PIPES_GUARDED_BY(server_mu_);
  /// export key ("<topic>#<peer>") -> export state.
  std::unordered_map<std::string, Export> exports_ PIPES_GUARDED_BY(server_mu_);
  uint64_t next_peer_id_ PIPES_GUARDED_BY(server_mu_) = 0;

  std::atomic<uint64_t> stats_subscribes_{0};
  std::atomic<uint64_t> stats_rejects_{0};
  std::atomic<uint64_t> stats_pushes_{0};
  std::atomic<uint64_t> stats_heartbeats_{0};
};

}  // namespace pipes
