/// \file keys.h
/// \brief Standard metadata keys, mirroring the items named in the paper.
///
/// A `MetadataKey` is a plain string; these constants name the items that the
/// stream engine, cost model, and runtime components define out of the box.
/// Developers are free to define additional keys (paper §4.4.1).

#pragma once

#include <string>

namespace pipes {

/// Identifies a metadata item within one provider (node or module).
using MetadataKey = std::string;

namespace keys {

// --- static metadata (paper §1, Figure 2) ---------------------------------
inline const MetadataKey kSchema = "schema";
inline const MetadataKey kElementSize = "element_size";

// --- source / stream metadata ----------------------------------------------
inline const MetadataKey kOutputRate = "output_rate";        // measured, periodic
inline const MetadataKey kAvgOutputRate = "avg_output_rate"; // triggered average
inline const MetadataKey kElementCount = "element_count";    // on-demand counter

// --- operator metadata -------------------------------------------------------
inline const MetadataKey kInputRate = "input_rate";           // measured, periodic
inline const MetadataKey kInputRateLeft = "input_rate_left";
inline const MetadataKey kInputRateRight = "input_rate_right";
inline const MetadataKey kAvgInputRate = "avg_input_rate";    // triggered average
inline const MetadataKey kVarInputRate = "var_input_rate";    // triggered variance
inline const MetadataKey kSelectivity = "selectivity";        // measured, periodic
inline const MetadataKey kAvgSelectivity = "avg_selectivity";
inline const MetadataKey kIoRatio = "io_ratio";               // output/input rate
inline const MetadataKey kMemoryUsage = "memory_usage";       // measured, on-demand
inline const MetadataKey kStateSize = "state_size";           // elements in state
inline const MetadataKey kCpuUsage = "cpu_usage";             // measured, periodic
inline const MetadataKey kWindowSize = "window_size";         // on-demand (state)
inline const MetadataKey kImplementationType = "implementation_type";  // static

// --- cost-model estimates (Figure 3) ----------------------------------------
inline const MetadataKey kEstOutputRate = "est_output_rate";
inline const MetadataKey kEstElementValidity = "est_element_validity";
inline const MetadataKey kEstCpuUsage = "est_cpu_usage";
inline const MetadataKey kEstMemoryUsage = "est_memory_usage";
inline const MetadataKey kEstStateSize = "est_state_size";
inline const MetadataKey kPredicateCost = "predicate_cost";   // intra-node dep
inline const MetadataKey kMatchSelectivity = "match_selectivity";  // matches/candidates

// --- value distribution (paper §1: "data distributions") ---------------------
inline const MetadataKey kDistinctKeys = "distinct_keys";  // periodic sketch

// --- latency / QoS monitoring -------------------------------------------------
inline const MetadataKey kProcessingLatency = "processing_latency";  // periodic [s]

// --- queued execution (motivation 1: Chain scheduling) ----------------------
inline const MetadataKey kQueueSize = "queue_size";       // on-demand
inline const MetadataKey kQueueBytes = "queue_bytes";     // on-demand
inline const MetadataKey kQueueOldestAge = "queue_oldest_age";  // on-demand [s]

// --- sink / query-level metadata ---------------------------------------------
inline const MetadataKey kQosMaxLatency = "qos_max_latency";  // static per query
inline const MetadataKey kPriority = "priority";
inline const MetadataKey kResultRate = "result_rate";
inline const MetadataKey kReuseCount = "reuse_count";         // subquery sharing

}  // namespace keys
}  // namespace pipes
