/// \file derived.h
/// \brief Derived statistics over existing metadata items.
///
/// The paper's §2.3 motivates reusing existing items for new ones ("online
/// aggregates of local metadata items belong to this type, e.g., the
/// average or variance of the join selectivity"). These helpers define the
/// common derived items over any numeric source item of the same provider:
/// running average, running variance, EWMA, min, max, and rate of change —
/// each as a *triggered* handler kept in sync with its source by update
/// propagation (avoiding the Figure 5 pitfall by construction).
///
/// Per-inclusion state is reset by the item's monitoring hooks, so removing
/// and re-including a derived item starts its aggregate fresh.

#pragma once

#include "common/status.h"
#include "metadata/registry.h"

namespace pipes::derived {

/// avg_n = avg_{n-1} + (x - avg_{n-1}) / n over all source updates.
Status DefineRunningAverage(MetadataRegistry& registry, MetadataKey name,
                            MetadataKey source);

/// Welford online (population) variance over all source updates.
Status DefineRunningVariance(MetadataRegistry& registry, MetadataKey name,
                             MetadataKey source);

/// Exponentially weighted moving average with weight `alpha` in (0, 1].
Status DefineEwma(MetadataRegistry& registry, MetadataKey name,
                  MetadataKey source, double alpha = 0.2);

/// Minimum source value observed since inclusion.
Status DefineMin(MetadataRegistry& registry, MetadataKey name,
                 MetadataKey source);

/// Maximum source value observed since inclusion.
Status DefineMax(MetadataRegistry& registry, MetadataKey name,
                 MetadataKey source);

/// First derivative: (x - x_prev) / (t - t_prev) per second; null until two
/// samples exist.
Status DefineRateOfChange(MetadataRegistry& registry, MetadataKey name,
                          MetadataKey source);

}  // namespace pipes::derived
