/// \file descriptor.h
/// \brief Declaration of available metadata items: update mechanism,
/// dependencies, evaluation function, and monitoring hooks (paper §4.4.1).
///
/// A `MetadataDescriptor` is the developer-facing definition of one metadata
/// item on one provider. The publish-subscribe machinery turns a descriptor
/// into a `MetadataHandler` when the item is included for the first time.

#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/types.h"
#include "metadata/keys.h"
#include "metadata/value.h"

namespace pipes {

class MetadataProvider;
class MetadataHandler;

/// The four maintenance concepts of Figure 2.
enum class UpdateMechanism {
  kStatic,    ///< invariable value
  kOnDemand,  ///< recomputed on every access (§3.2.1)
  kPeriodic,  ///< recomputed per fixed time window (§3.2.2)
  kTriggered, ///< recomputed when an underlying item changes (§3.2.3)
};

/// Human-readable name of an update mechanism.
const char* UpdateMechanismToString(UpdateMechanism m);

/// \brief Reference to a concrete metadata item: (provider, key).
struct MetadataRef {
  MetadataProvider* provider = nullptr;
  MetadataKey key;

  bool operator==(const MetadataRef& other) const {
    return provider == other.provider && key == other.key;
  }
};

/// Hash so refs can key unordered containers (inclusion planning uses these
/// on its hot path). The boost-style combiner keeps provider and key bits
/// spread across the word, where the previous multiply-xor left the low bits
/// dominated by the pointer alignment.
struct MetadataRefHash {
  size_t operator()(const MetadataRef& r) const {
    size_t h = std::hash<const void*>()(r.provider);
    h ^= std::hash<std::string>()(r.key) + 0x9e3779b97f4a7c15ULL + (h << 6) +
         (h >> 2);
    return h;
  }
};

/// \brief Where a declared dependency points (paper §2.3).
///
/// Intra-node dependencies use kSelf; inter-node dependencies use
/// kUpstream/kDownstream (resolved against the owning node's topology) or an
/// explicit provider; module dependencies (paper §4.5) use kModule.
struct DependencySpec {
  enum class Target { kSelf, kUpstream, kDownstream, kModule, kExplicit };

  Target target = Target::kSelf;
  /// Input/output index for kUpstream/kDownstream. -1 means "all".
  int index = 0;
  /// Module name for kModule.
  std::string module;
  /// Provider for kExplicit.
  MetadataProvider* provider = nullptr;
  /// The key of the item depended upon.
  MetadataKey key;
  /// Label of `provider`, captured when the spec is built. Checkpoint
  /// imaging must use this instead of dereferencing `provider`: the target
  /// provider may have been torn down while descriptors naming it survive.
  std::string provider_label;

  static DependencySpec Self(MetadataKey k) {
    return DependencySpec{Target::kSelf, 0, "", nullptr, std::move(k), ""};
  }
  static DependencySpec Upstream(int input_index, MetadataKey k) {
    return DependencySpec{Target::kUpstream, input_index, "", nullptr,
                          std::move(k), ""};
  }
  static DependencySpec AllUpstreams(MetadataKey k) {
    return DependencySpec{Target::kUpstream, -1, "", nullptr, std::move(k), ""};
  }
  static DependencySpec Downstream(int output_index, MetadataKey k) {
    return DependencySpec{Target::kDownstream, output_index, "", nullptr,
                          std::move(k), ""};
  }
  static DependencySpec AllDownstreams(MetadataKey k) {
    return DependencySpec{Target::kDownstream, -1, "", nullptr, std::move(k),
                          ""};
  }
  static DependencySpec Module(std::string name, MetadataKey k) {
    return DependencySpec{Target::kModule, 0, std::move(name), nullptr,
                          std::move(k), ""};
  }
  // Defined out of line (descriptor.cc): captures p->label() and
  // MetadataProvider is only forward-declared here.
  static DependencySpec Explicit(MetadataProvider* p, MetadataKey k);
};

/// \brief Inclusion-time view offered to dynamic dependency resolvers
/// (paper §4.4.3).
class ResolutionContext {
 public:
  virtual ~ResolutionContext() = default;

  /// The provider whose item is being resolved.
  virtual MetadataProvider& self() const = 0;

  /// True if the item is already included (has a handler) or is planned for
  /// inclusion within the current subscription.
  virtual bool IsIncluded(const MetadataRef& ref) const = 0;

  /// True if the target provider declares a descriptor for the key.
  virtual bool IsAvailable(const MetadataRef& ref) const = 0;

  /// Resolves a DependencySpec against self's topology. May return several
  /// refs for "all upstreams/downstreams" specs; empty if unresolvable.
  virtual std::vector<MetadataRef> ResolveSpec(const DependencySpec& spec) const = 0;
};

/// Computes the concrete dependency list of an item at inclusion time.
using DependencyResolver =
    std::function<std::vector<MetadataRef>(ResolutionContext&)>;

/// \brief Evaluation-time view offered to an item's evaluator.
class EvalContext {
 public:
  virtual ~EvalContext() = default;

  /// The provider owning the item.
  virtual MetadataProvider& provider() const = 0;

  /// Current time.
  virtual Timestamp now() const = 0;

  /// Time elapsed since the item's previous update (for periodic handlers:
  /// the window size; 0 on the very first evaluation).
  virtual Duration elapsed() const = 0;

  /// Number of resolved dependencies, in resolver order.
  virtual size_t dep_count() const = 0;

  /// Current value of the i-th dependency.
  virtual MetadataValue Dep(size_t i) const = 0;

  /// Numeric value of the i-th dependency.
  double DepDouble(size_t i) const { return Dep(i).AsDouble(); }

  /// The previously published value of the item itself (null on first
  /// evaluation) — lets evaluators build online aggregates.
  virtual MetadataValue Previous() const = 0;

  /// 0-based index of this evaluation within the handler's lifetime; with
  /// Previous(), enough for incremental averages without external state.
  virtual uint64_t eval_index() const = 0;
};

/// Computes the current value of an item.
using Evaluator = std::function<MetadataValue(EvalContext&)>;

/// \brief How a handler reacts to evaluator failures (thrown exceptions and
/// non-finite numeric results).
///
/// Failures advance the handler's health state machine
/// (kHealthy -> kDegraded -> kQuarantined); while quarantined, re-evaluation
/// is retried with exponential backoff and the handler serves its last-known
/// -good value (or the descriptor's fallback). N consecutive successes
/// recover the handler to kHealthy.
struct RetryPolicy {
  /// Consecutive failures after which the handler is kDegraded.
  int failures_to_degrade = 1;
  /// Consecutive failures after which the handler is kQuarantined.
  int failures_to_quarantine = 3;
  /// Consecutive successes that recover a degraded/quarantined handler.
  int successes_to_recover = 2;
  /// First retry delay once quarantined.
  Duration initial_backoff = 10 * kMicrosPerMilli;
  /// Backoff growth per successive quarantined failure.
  double backoff_multiplier = 2.0;
  /// Backoff ceiling.
  Duration max_backoff = 10 * kMicrosPerSecond;
  /// ± jitter fraction applied to each retry delay (clamped to [0, 1]).
  /// A correlated fault quarantines many handlers at once; without jitter
  /// they all probe in lockstep at the same instants. The backoff *growth*
  /// stays deterministic — only the applied delay is perturbed, drawn from
  /// a per-handler seeded RNG so runs replay exactly. 0 (default) keeps the
  /// historical fully-deterministic schedule.
  double backoff_jitter = 0.0;
};

/// Enables/disables node-side monitoring code for an item.
using MonitoringHook = std::function<void(MetadataProvider&)>;

/// \brief Full declaration of one available metadata item.
///
/// Build with the static factories + fluent setters:
/// \code
///   registry.Define(
///       MetadataDescriptor::Periodic(keys::kInputRate, Seconds(1))
///           .WithEvaluator([&](EvalContext& ctx) { ... })
///           .WithMonitoring([&](auto&) { probe.Enable(); },
///                           [&](auto&) { probe.Disable(); })
///           .WithDescription("measured input rate [elements/s]"));
/// \endcode
class MetadataDescriptor {
 public:
  /// An invariable item with a fixed value.
  static MetadataDescriptor Static(MetadataKey key, MetadataValue value);

  /// An item recomputed on each access.
  static MetadataDescriptor OnDemand(MetadataKey key);

  /// An item recomputed every `period` microseconds.
  static MetadataDescriptor Periodic(MetadataKey key, Duration period);

  /// An item recomputed when an underlying item changes.
  static MetadataDescriptor Triggered(MetadataKey key);

  // Fluent setters -----------------------------------------------------------

  /// Appends static dependency specs (resolved at inclusion time).
  MetadataDescriptor&& DependsOn(std::vector<DependencySpec> specs) &&;
  MetadataDescriptor&& DependsOnSelf(MetadataKey key) &&;
  MetadataDescriptor&& DependsOnUpstream(int input, MetadataKey key) &&;
  MetadataDescriptor&& DependsOnAllUpstreams(MetadataKey key) &&;
  MetadataDescriptor&& DependsOnDownstream(int output, MetadataKey key) &&;
  MetadataDescriptor&& DependsOnModule(std::string module, MetadataKey key) &&;

  /// Replaces the whole dependency resolution with a dynamic resolver
  /// (paper §4.4.3). Overrides any DependsOn* specs.
  ///
  /// Redefining an item to change its (dynamic) dependencies — via
  /// MetadataRegistry::Redefine / DefineOrRedefine / Undefine — bumps the
  /// attached manager's structure epoch, so propagation waves never reuse a
  /// wave plan cached against the old dependency shape.
  MetadataDescriptor&& WithDynamicDependencies(DependencyResolver resolver) &&;

  MetadataDescriptor&& WithEvaluator(Evaluator fn) &&;
  MetadataDescriptor&& WithMonitoring(MonitoringHook activate,
                                      MonitoringHook deactivate) &&;
  MetadataDescriptor&& WithDescription(std::string text) &&;

  /// Overrides the default fault-handling policy of the item's handler.
  MetadataDescriptor&& WithRetryPolicy(RetryPolicy policy) &&;

  /// Value served when the handler has no last-known-good value to fall back
  /// on (e.g. the very first evaluation fails, or the provider is being torn
  /// down before the item was ever computed).
  MetadataDescriptor&& WithFallbackValue(MetadataValue value) &&;

  /// Marks this descriptor as a *recovered shell*: a definition rebuilt by
  /// crash recovery (persistence.h) whose evaluator could not be persisted.
  /// Shells serve the recovered last-known-good value through the fault
  /// containment path until the application re-defines the item.
  MetadataDescriptor&& AsRecoveredShell() &&;

  /// \brief Staleness bound for overload degradation (periodic items).
  ///
  /// Under sustained scheduler overload the MetadataManager's pressure
  /// governor stretches periodic refresh cadences by a bounded backoff
  /// factor; the stretched period never exceeds this bound, so the item's
  /// observed staleness stays <= max_staleness no matter how deep the
  /// brownout. 0 (default) means "no explicit bound": the governor caps the
  /// stretch at its default_staleness_factor x period instead.
  MetadataDescriptor&& WithMaxStaleness(Duration bound) &&;

  // Accessors -----------------------------------------------------------------
  const MetadataKey& key() const { return key_; }
  UpdateMechanism mechanism() const { return mechanism_; }
  Duration period() const { return period_; }
  const MetadataValue& static_value() const { return static_value_; }
  const Evaluator& evaluator() const { return evaluator_; }
  const DependencyResolver& dependency_resolver() const { return resolver_; }
  bool has_dependencies() const { return static_cast<bool>(resolver_); }
  /// The declared static dependency specs (empty when a dynamic resolver
  /// replaced them). Persisted by the durability layer.
  const std::vector<DependencySpec>& dependency_specs() const {
    return static_specs_;
  }
  /// True when dependencies come from a dynamic resolver (paper §4.4.3) —
  /// code, hence unknowable to the durability layer.
  bool has_dynamic_dependencies() const {
    return static_cast<bool>(resolver_) && static_specs_.empty();
  }
  bool is_recovered_shell() const { return recovered_shell_; }
  const MonitoringHook& activate_monitoring() const { return activate_; }
  const MonitoringHook& deactivate_monitoring() const { return deactivate_; }
  const std::string& description() const { return description_; }
  const RetryPolicy& retry_policy() const { return retry_policy_; }
  const MetadataValue& fallback_value() const { return fallback_; }
  bool has_fallback() const { return !fallback_.is_null(); }
  Duration max_staleness() const { return max_staleness_; }

 private:
  MetadataDescriptor(MetadataKey key, UpdateMechanism mechanism)
      : key_(std::move(key)), mechanism_(mechanism) {}

  void AppendSpecs(std::vector<DependencySpec> specs);

  MetadataKey key_;
  UpdateMechanism mechanism_;
  Duration period_ = 0;
  MetadataValue static_value_;
  Evaluator evaluator_;
  DependencyResolver resolver_;             // null => no dependencies
  std::vector<DependencySpec> static_specs_;  // feeds the default resolver
  MonitoringHook activate_;
  MonitoringHook deactivate_;
  std::string description_;
  RetryPolicy retry_policy_;
  MetadataValue fallback_;
  Duration max_staleness_ = 0;  // 0 => governor default cap applies
  bool recovered_shell_ = false;
};

}  // namespace pipes
