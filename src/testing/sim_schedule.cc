#include "testing/sim_schedule.h"

#include <algorithm>
#include <cassert>
#include <sstream>

#include "common/rng.h"

namespace pipes {
namespace sim {

namespace {

// Packs a fault burst's parameters into SimOp::arg (decimal digit groups so
// the packed value stays readable in schedule dumps).
int64_t PackFaults(int drop_permille, int dup_permille, int delay_ms) {
  return drop_permille + int64_t{1000} * dup_permille +
         int64_t{1000000} * delay_ms;
}

SimOp DefineOp(SimOpKind kind, int provider, int key, SimMechanism mech,
               int dep_provider = 0, int dep_key = 0) {
  SimOp op;
  op.kind = kind;
  op.provider = static_cast<uint16_t>(provider);
  op.key = static_cast<uint16_t>(key);
  op.mech = static_cast<uint16_t>(mech);
  op.dep_provider = static_cast<uint16_t>(dep_provider);
  op.dep_key = static_cast<uint16_t>(dep_key);
  return op;
}

// Chooses a (re)definition for (provider, key): mechanism weights favor the
// propagation-relevant kinds, and derived items point at a uniformly chosen
// *other* (provider, key) — dangling or cyclic targets are legal (the
// harness requires the real system and the model to reject them alike).
SimOp RandomDefine(Rng& rng, SimOpKind kind, int provider, int key,
                   const SimProfile& p) {
  double r = rng.UniformDouble(0.0, 1.0);
  SimMechanism mech;
  if (r < 0.15) {
    mech = SimMechanism::kStatic;
  } else if (r < 0.40) {
    mech = SimMechanism::kOnDemand;
  } else if (r < 0.55) {
    mech = SimMechanism::kPeriodic;
  } else if (r < 0.70) {
    mech = SimMechanism::kTriggered;
  } else {
    mech = SimMechanism::kDerived;
  }
  int dep_provider = 0;
  int dep_key = 0;
  if (mech == SimMechanism::kDerived) {
    do {
      dep_provider = static_cast<int>(rng.UniformInt(0, p.providers - 1));
      dep_key = static_cast<int>(rng.UniformInt(0, p.keys - 1));
    } while (dep_provider == provider && dep_key == key);
  }
  return DefineOp(kind, provider, key, mech, dep_provider, dep_key);
}

}  // namespace

SimProfile ProfileForSeed(uint64_t seed, const SimProfile& base) {
  SimProfile p = base;
  if (base.federation && base.crashes) {
    switch (seed % 3) {
      case 0:
        p.federation = false;  // crashes only
        break;
      case 1:
        p.crashes = false;  // federation only
        break;
      default:
        p.federation = false;  // pure local
        p.crashes = false;
        break;
    }
  }
  return p;
}

SimSchedule GenerateSchedule(uint64_t seed, const SimProfile& profile) {
  assert(!(profile.federation && profile.crashes) &&
         "federation and crashes are mutually exclusive per schedule");
  SimSchedule s;
  s.seed = seed;
  s.profile = profile;
  // SplitMix-style seed spreading so adjacent seeds diverge immediately.
  Rng rng(seed * 0x9E3779B97F4A7C15ULL + 0xD1B54A32D192ED03ULL);
  const int P = profile.providers;
  const int K = profile.keys;
  auto pick_pk = [&](SimOp& op) {
    op.provider = static_cast<uint16_t>(rng.UniformInt(0, P - 1));
    op.key = static_cast<uint16_t>(rng.UniformInt(0, K - 1));
  };
  // The federation export anchor p0/k0 must stay a live on-demand item for
  // the whole run: the mirror's strictly-increasing-value oracle is defined
  // against it.
  auto protected_pk = [&](int provider, int key) {
    return profile.federation && provider == 0 && key == 0;
  };

  // Prologue: a base population plus a few subscriptions, so the body runs
  // against a live graph from the first op.
  for (int pr = 0; pr < P; ++pr) {
    for (int k = 0; k < K; ++k) {
      if (protected_pk(pr, k)) {
        s.ops.push_back(
            DefineOp(SimOpKind::kDefine, pr, k, SimMechanism::kOnDemand));
        continue;
      }
      if (rng.Bernoulli(0.8)) {
        s.ops.push_back(RandomDefine(rng, SimOpKind::kDefine, pr, k, profile));
      }
    }
  }
  const int prologue_subs =
      std::min(profile.sub_slots, std::max(2, P * K / 3));
  for (int i = 0; i < prologue_subs; ++i) {
    SimOp op;
    op.kind = SimOpKind::kSubscribe;
    pick_pk(op);
    op.slot = static_cast<uint16_t>(i);
    s.ops.push_back(op);
  }
  {
    SimOp q;
    q.kind = SimOpKind::kQuiesce;
    s.ops.push_back(q);
  }

  // Body: a weighted stream of operations with a quiesce sweep every ~25
  // ops (the full oracle runs there; per-op checks run everywhere).
  int since_quiesce = 0;
  for (int i = 0; i < profile.ops; ++i) {
    if (++since_quiesce >= 25) {
      since_quiesce = 0;
      SimOp q;
      q.kind = SimOpKind::kQuiesce;
      s.ops.push_back(q);
      continue;
    }
    double r = rng.UniformDouble(0.0, 1.0);
    SimOp op;
    if (r < 0.28) {
      op.kind = SimOpKind::kCommit;
      pick_pk(op);
      // Bias commits toward the federation anchor so the mirror pipeline
      // sees sustained traffic.
      if (profile.federation && rng.Bernoulli(0.4)) {
        op.provider = 0;
        op.key = 0;
      }
    } else if (r < 0.42) {
      op.kind = SimOpKind::kAdvance;
      op.arg = std::clamp<int64_t>(
          static_cast<int64_t>(rng.Exponential(1.0 / 15000.0)),
          kMicrosPerMilli, 80 * kMicrosPerMilli);
    } else if (r < 0.54) {
      op.kind = SimOpKind::kSubscribe;
      pick_pk(op);
      op.slot = static_cast<uint16_t>(
          rng.UniformInt(0, profile.sub_slots - 1));
    } else if (r < 0.62) {
      op.kind = SimOpKind::kUnsubscribe;
      op.slot = static_cast<uint16_t>(
          rng.UniformInt(0, profile.sub_slots - 1));
    } else if (r < 0.70) {
      op = RandomDefine(rng, SimOpKind::kDefine,
                        static_cast<int>(rng.UniformInt(0, P - 1)),
                        static_cast<int>(rng.UniformInt(0, K - 1)), profile);
      if (protected_pk(op.provider, op.key)) op.key = 1 % K;
    } else if (r < 0.75) {
      op = RandomDefine(rng, SimOpKind::kRedefine,
                        static_cast<int>(rng.UniformInt(0, P - 1)),
                        static_cast<int>(rng.UniformInt(0, K - 1)), profile);
      if (protected_pk(op.provider, op.key)) op.key = 1 % K;
    } else if (r < 0.80) {
      op.kind = SimOpKind::kUndefine;
      pick_pk(op);
      if (protected_pk(op.provider, op.key)) op.key = 1 % K;
    } else if (r < 0.83) {
      op.kind = SimOpKind::kRetireProvider;
      // The federation server provider and (with fewer than three
      // providers) provider 0 stay alive so the run keeps a backbone.
      op.provider = static_cast<uint16_t>(
          profile.federation || P < 3 ? rng.UniformInt(1, P - 1)
                                      : rng.UniformInt(0, P - 1));
    } else if (r < 0.86 && profile.durability) {
      op.kind = SimOpKind::kCheckpoint;
    } else if (r < 0.88 && profile.durability) {
      op.kind = SimOpKind::kFlushJournal;
    } else if (r < 0.91 && profile.crashes && profile.durability) {
      op.kind = SimOpKind::kCrashRestart;
      op.arg = rng.Bernoulli(0.5)
                   ? 0  // clean: exact-equality recovery oracle
                   : static_cast<int64_t>(rng.UniformInt(1, 400));
    } else if (r < 0.94 && profile.federation) {
      op.kind = SimOpKind::kPartition;
    } else if (r < 0.97 && profile.federation) {
      op.kind = SimOpKind::kHeal;
    } else if (profile.federation && profile.faults) {
      op.kind = SimOpKind::kFaultBurst;
      op.arg = PackFaults(static_cast<int>(rng.UniformInt(0, 300)),
                          static_cast<int>(rng.UniformInt(0, 200)),
                          static_cast<int>(rng.UniformInt(0, 10)));
    } else {
      op.kind = SimOpKind::kAdvance;
      op.arg = 5 * kMicrosPerMilli;
    }
    s.ops.push_back(op);
  }

  // Epilogue: heal any outstanding faults, settle, and run the final sweep.
  if (profile.federation) {
    SimOp heal;
    heal.kind = SimOpKind::kHeal;
    s.ops.push_back(heal);
  }
  SimOp q;
  q.kind = SimOpKind::kQuiesce;
  s.ops.push_back(q);
  return s;
}

namespace {
const char* MechName(SimMechanism m) {
  switch (m) {
    case SimMechanism::kStatic:
      return "static";
    case SimMechanism::kOnDemand:
      return "ondemand";
    case SimMechanism::kPeriodic:
      return "periodic";
    case SimMechanism::kTriggered:
      return "triggered";
    case SimMechanism::kDerived:
      return "derived";
  }
  return "?";
}
}  // namespace

std::string ToString(const SimOp& op) {
  std::ostringstream os;
  auto pk = [&] { os << " p" << op.provider << "/k" << op.key; };
  switch (op.kind) {
    case SimOpKind::kDefine:
    case SimOpKind::kRedefine:
      os << (op.kind == SimOpKind::kDefine ? "define" : "redefine");
      pk();
      os << " " << MechName(static_cast<SimMechanism>(op.mech));
      if (static_cast<SimMechanism>(op.mech) == SimMechanism::kDerived) {
        os << " dep=p" << op.dep_provider << "/k" << op.dep_key;
      }
      break;
    case SimOpKind::kUndefine:
      os << "undefine";
      pk();
      break;
    case SimOpKind::kSubscribe:
      os << "subscribe";
      pk();
      os << " slot=" << op.slot;
      break;
    case SimOpKind::kUnsubscribe:
      os << "unsubscribe slot=" << op.slot;
      break;
    case SimOpKind::kCommit:
      os << "commit";
      pk();
      break;
    case SimOpKind::kAdvance:
      os << "advance " << op.arg / kMicrosPerMilli << "ms";
      break;
    case SimOpKind::kRetireProvider:
      os << "retire p" << op.provider;
      break;
    case SimOpKind::kCheckpoint:
      os << "checkpoint";
      break;
    case SimOpKind::kFlushJournal:
      os << "flush-journal";
      break;
    case SimOpKind::kCrashRestart:
      os << "crash-restart tear=" << op.arg;
      break;
    case SimOpKind::kPartition:
      os << "partition";
      break;
    case SimOpKind::kHeal:
      os << "heal";
      break;
    case SimOpKind::kFaultBurst:
      os << "fault-burst drop=" << op.arg % 1000 << "pm dup="
         << (op.arg / 1000) % 1000 << "pm delay="
         << op.arg / 1000000 << "ms";
      break;
    case SimOpKind::kQuiesce:
      os << "quiesce";
      break;
  }
  return os.str();
}

std::string Describe(const SimSchedule& schedule) {
  std::ostringstream os;
  os << "schedule seed=" << schedule.seed
     << " ops=" << schedule.ops.size()
     << " durability=" << (schedule.profile.durability ? 1 : 0)
     << " federation=" << (schedule.profile.federation ? 1 : 0)
     << " crashes=" << (schedule.profile.crashes ? 1 : 0) << "\n";
  for (size_t i = 0; i < schedule.ops.size(); ++i) {
    os << "  #" << i << " " << ToString(schedule.ops[i]) << "\n";
  }
  return os.str();
}

}  // namespace sim
}  // namespace pipes
