/// \file reference_model.h
/// \brief In-memory reference model of registry / subscription / propagation
/// semantics for the deterministic simulation harness.
///
/// The model re-implements, in plain single-threaded code, what the real
/// metadata subsystem promises:
///
///  - registry semantics: Define fails on an existing key; Redefine/Undefine
///    fail while the item is included (paper §4.4.2);
///  - inclusion closure: subscribing includes the item and its transitive
///    dependencies, dependencies-first; unsubscribing excludes the closure
///    implicitly when the last reference disappears (§2.4);
///  - wave semantics: an event refreshes the origin's transitive *dependents*
///    (never the origin itself), dependencies-first; only triggered items
///    re-evaluate (§3.2.3);
///  - value semantics per mechanism: static is frozen at definition,
///    on-demand evaluates at access, triggered caches its last refresh,
///    retired handlers freeze on last-known-good, recovered shells throw
///    (and therefore keep their injected last-known-good);
///  - durable state: what journal + checkpoint recovery must restore —
///    exactly after a clean-tail crash, and per item a state the item passed
///    through since the last checkpoint after a torn-tail one.
///
/// The harness applies every schedule op to the real system *and* to this
/// model and fails the run on any divergence, so the model doubles as an
/// executable specification.

#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/types.h"
#include "testing/sim_schedule.h"

namespace pipes {
namespace sim {

/// Outcome of applying one op; the harness requires real == model. kSkip
/// marks ops the harness must not hand to the real system at all (they
/// would dereference a destroyed provider through a stale descriptor — an
/// application bug, not a semantics question).
enum class OpOutcome : uint8_t { kOk, kFail, kSkip };

const char* ToString(OpOutcome outcome);

/// (provider index, key index) pair.
using ItemId = std::pair<int, int>;

/// Sentinel for "dependency target could not be extracted" in RecoveredView
/// defs (the item came back defined but not included, so only its descriptor
/// — not its resolved dependency — is visible).
inline constexpr int kUnknownDep = -2;

/// The static value convention shared by harness and model: static items
/// are defined with this literal.
inline double StaticValueFor(int provider, int key) {
  return 10000.0 + 100.0 * provider + key;
}

/// Derived evaluators compute Dep(0) + this offset (null propagates).
inline constexpr double kDerivedOffset = 1000.0;

/// Expected state of one metadata item.
struct ModelItem {
  SimMechanism mech = SimMechanism::kOnDemand;
  int dep_provider = -1;  ///< kDerived only
  int dep_key = -1;
  bool included = false;
  int external_refs = 0;
  int internal_refs = 0;
  bool shell = false;    ///< recovered without a live evaluator
  bool retired = false;  ///< frozen by provider teardown
  /// Expected stored value (MetadataManager::PeekValue). nullopt = expect a
  /// null read (never stored, or a null was stored).
  std::optional<double> value;
  /// False: the value is timing-dependent (periodic cadence in the
  /// dependency cone, or adopted from an ambiguous torn recovery) and
  /// equality checks are skipped for it.
  bool value_checked = true;
};

/// Expected durable (recoverable) state of the system.
struct DurableState {
  struct Def {
    SimMechanism mech = SimMechanism::kOnDemand;
    int dep_provider = -1;
    int dep_key = -1;
    bool operator==(const Def& o) const {
      return mech == o.mech && dep_provider == o.dep_provider &&
             dep_key == o.dep_key;
    }
  };
  std::map<ItemId, Def> defs;
  std::map<ItemId, int> subs;  ///< external subscription count per item
  /// Last journaled value per item. Never-stored and stored-null both read
  /// back null, so nullopt covers both.
  std::map<ItemId, std::optional<double>> values;
  std::set<ItemId> unchecked;  ///< items whose durable value is not compared
};

/// Per-item states each durable facet has passed through since the last
/// checkpoint — the acceptance set for torn-tail recovery (a torn journal
/// replays each item to *some* state it held in the window).
struct DurableWindow {
  std::map<ItemId, std::vector<std::optional<DurableState::Def>>> defs;
  std::map<ItemId, std::vector<int>> subs;
  std::map<ItemId, std::vector<std::optional<double>>> values;
  /// Items whose journaled value was timing-dependent at *any* point in the
  /// window. Sticky where DurableState::unchecked is not: a provider wipe
  /// erases the live marker, but a torn tail can resurrect the pre-wipe
  /// journal records, so torn-recovery value checks must stay suppressed.
  std::set<ItemId> unchecked;
};

/// What the harness extracted from the real system right after RecoverFrom.
struct RecoveredView {
  /// Every defined item with its mechanism; dep_provider == kUnknownDep when
  /// the dependency target is not extractable (defined but not included).
  std::map<ItemId, DurableState::Def> defs;
  std::map<ItemId, int> subs;  ///< restored external subscriptions per item
  /// Stored value (PeekValue) per included item.
  std::map<ItemId, std::optional<double>> values;
};

/// The reference model proper. Deterministic and single-threaded; the
/// harness drives it in lock-step with the real system.
class ReferenceModel {
 public:
  explicit ReferenceModel(const SimProfile& profile);

  // --- schedule ops (mutate model state, return the expected outcome) ------
  OpOutcome Define(int provider, int key, SimMechanism mech, int dep_provider,
                   int dep_key);
  OpOutcome Redefine(int provider, int key, SimMechanism mech,
                     int dep_provider, int dep_key);
  OpOutcome Undefine(int provider, int key);
  OpOutcome Subscribe(int provider, int key);
  OpOutcome Unsubscribe(int provider, int key);
  /// Source cell := `cell`; fires a propagation wave when the item is
  /// included and its provider alive.
  OpOutcome Commit(int provider, int key, double cell);
  OpOutcome RetireProvider(int provider);
  void Checkpoint();  ///< durable floor := current durable state

  // --- harness hooks --------------------------------------------------------
  /// The sweep read a live on-demand item via Get(): its cache (and durable
  /// value) become the current cell value.
  void OnDemandEvaluated(int provider, int key);

  /// Applies a simulated crash + recovery and cross-checks `view` (the real
  /// system's recovered state). `predefined` maps items the application
  /// re-defined before RecoverFrom to their descriptors (they return live;
  /// other non-statics return as shells). Clean crash (`torn` false): the
  /// view must equal the durable state exactly. Torn crash: each item's
  /// recovered facets must be a state it passed through since the last
  /// checkpoint, and the model adopts the view. Afterwards durability is
  /// considered re-enabled (fresh baseline checkpoint). Returns "" on
  /// success, else a description of the violation.
  std::string ApplyCrashRecovery(
      const RecoveredView& view,
      const std::map<ItemId, DurableState::Def>& predefined, bool torn);

  // --- oracle queries -------------------------------------------------------
  bool ProviderRetired(int provider) const;
  bool IsAvailable(int provider, int key) const;
  bool IsIncluded(int provider, int key) const;
  size_t IncludedCount(int provider) const;
  std::vector<int> AvailableKeys(int provider) const;
  const ModelItem* FindItem(int provider, int key) const;
  const DurableState& durable() const { return durable_; }
  double cell(int provider, int key) const;

 private:
  struct Provider {
    bool retired = false;
    std::map<int, ModelItem> items;
  };

  ModelItem* Find(int provider, int key);
  /// Plans the inclusion closure of (provider, key), dependencies-first.
  OpOutcome PlanInclude(ItemId id, std::vector<ItemId>* plan,
                        std::set<ItemId>* in_path, std::set<ItemId>* planned);
  void Include(ItemId id);
  void MaybeRemove(ItemId id);
  void Wave(ItemId origin);
  /// Get() as seen by a dependent's evaluator (evaluates live on-demand
  /// deps as a side effect, serves caches/frozen values otherwise).
  std::optional<double> DepGet(ItemId id);
  /// True when the dependency's cached value is not predictable (periodic
  /// cadence or adopted-unchecked); dependents of such items go unchecked.
  bool DepTainted(ItemId id) const;
  void SetDurableValue(ItemId id);
  /// Appends the item's current durable facets to its acceptance window.
  void RecordWindow(ItemId id);
  /// Rebuilds durable_/floor_/window_ from the current live state (the
  /// baseline checkpoint EnableDurability writes on re-enable).
  void RebaselineDurable();

  SimProfile profile_;
  std::vector<Provider> providers_;
  /// Reverse dependency edges of *included* items: dep -> dependents.
  std::map<ItemId, std::set<ItemId>> dependents_;
  DurableState durable_;
  DurableState floor_;
  DurableWindow window_;
  /// Source cells (mirrors the harness's evaluator-visible cells).
  std::map<ItemId, double> cells_;
};

}  // namespace sim
}  // namespace pipes
