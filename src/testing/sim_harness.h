/// \file sim_harness.h
/// \brief Executes one simulated schedule against the real metadata stack
/// and the reference model in lock-step.
///
/// The harness builds a full system per run — MetadataManager on a
/// VirtualTimeScheduler, a provider pool, optional durability (journal +
/// checkpoints in a scratch directory, crash-restarts with clean or torn
/// journal tails), optional federation (a second manager mirroring the
/// anchor item over a LoopbackLink with injectable message faults) — and
/// applies each SimOp to both the system and the ReferenceModel. Divergence
/// on any op outcome, any quiesce-point invariant, or any recovery check
/// fails the run with a replayable description.
///
/// Determinism contract: the whole run executes on virtual time with every
/// random draw seeded from the schedule, so `RunSchedule` is a pure function
/// of (schedule, options) — including the returned event log, byte for byte.
/// The sweep asserts `SystemClockUseCount()` stays flat across the run, so
/// no sim-reachable path can regress to wall-clock reads unnoticed.

#pragma once

#include <string>

#include "testing/sim_schedule.h"

namespace pipes {
namespace sim {

/// Options of one harness run.
struct SimRunOptions {
  /// Wraps the federation client endpoint in a shim that re-delivers every
  /// third update push with a forged (incremented) sequence number — a
  /// duplicate delivery the cross-link sequence suppression cannot catch.
  /// The strictly-increasing observed-value oracle must flag it; this is the
  /// harness's own bug-detection self-test (pipes_sim --inject-bug).
  bool inject_duplicates = false;
  /// Durability scratch directory. "" = a fresh private temp directory,
  /// removed when the run ends. A caller-provided directory is used as-is
  /// and left in place (the fsck tests inspect the journals afterwards).
  std::string durability_dir;
};

/// Outcome of one harness run.
struct SimRunResult {
  bool ok = true;
  std::string failure;  ///< first divergence; "" when ok
  int failed_op = -1;   ///< schedule index of the failing op; -1 = setup
  /// One line per op (index, virtual time, op, outcome). Deterministic:
  /// byte-identical across runs of the same schedule + options.
  std::string event_log;
};

/// Runs `schedule` to completion (or first divergence).
SimRunResult RunSchedule(const SimSchedule& schedule,
                         const SimRunOptions& opts = {});

}  // namespace sim
}  // namespace pipes
