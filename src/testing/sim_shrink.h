/// \file sim_shrink.h
/// \brief Greedy schedule shrinking for failing simulation runs.
///
/// A failing seed usually carries a hundred-plus ops of noise around the
/// handful that matter. `ShrinkSchedule` is a bounded ddmin-lite: it removes
/// chunks of ops (window halving down to single ops) and keeps every removal
/// after which the schedule still fails, so the reported repro is close to
/// minimal while the cost stays capped at `max_attempts` harness runs.
/// Schedules address providers/keys/slots by pool index, never by pointer,
/// so every subsequence is itself a valid schedule.

#pragma once

#include "testing/sim_harness.h"
#include "testing/sim_schedule.h"

namespace pipes {
namespace sim {

/// Shrinks `failing` (a schedule whose RunSchedule(., opts) fails) to a
/// smaller still-failing schedule. Deterministic; returns `failing`
/// unchanged when nothing can be removed within the attempt budget.
SimSchedule ShrinkSchedule(const SimSchedule& failing,
                           const SimRunOptions& opts = {},
                           int max_attempts = 200);

}  // namespace sim
}  // namespace pipes
