/// \file sim_schedule.h
/// \brief Seeded random schedules of metadata operations for the
/// deterministic simulation harness.
///
/// A schedule is a flat vector of `SimOp`s over a fixed pool of providers
/// (`p0`..`pN`) and keys (`k0`..`kK`). Ops reference pool *indexes*, never
/// pointers, so any subsequence of a schedule is itself a valid schedule —
/// the property the greedy shrinker relies on. Ops are allowed to be invalid
/// at execution time (redefining a missing key, unsubscribing an empty
/// slot): the harness applies each op to the real system and to the
/// reference model and requires both to agree on the outcome, which turns
/// "invalid" ops into additional oracle coverage instead of generator
/// bookkeeping.
///
/// Generation is a pure function of (seed, profile): identical inputs yield
/// identical schedules, byte for byte. All randomness flows through one
/// seeded `pipes::Rng`.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace pipes {
namespace sim {

/// One metadata operation kind in a simulated schedule.
enum class SimOpKind : uint8_t {
  kDefine,          ///< Define key on provider (mech, optional dep)
  kRedefine,        ///< Redefine key (fails while included)
  kUndefine,        ///< Undefine key (fails while included)
  kSubscribe,       ///< External subscription into a slot
  kUnsubscribe,     ///< Release a subscription slot
  kCommit,          ///< Bump the key's source cell + FireEvent
  kAdvance,         ///< Advance virtual time (runs due tasks)
  kRetireProvider,  ///< Destroy the provider (handler retirement)
  kCheckpoint,      ///< Durability: CheckpointNow
  kFlushJournal,    ///< Durability: FlushJournal
  kCrashRestart,    ///< Simulated crash + recovery (arg = torn tail bytes)
  kPartition,       ///< Partition the federation link (both directions)
  kHeal,            ///< Heal the link and disarm message faults
  kFaultBurst,      ///< Arm drop/duplicate/delay faults on the link
  kQuiesce,         ///< Settle the system, then run the full oracle sweep
};

/// Update mechanism selected at (re)definition time.
enum class SimMechanism : uint8_t {
  kStatic,
  kOnDemand,
  kPeriodic,
  kTriggered,
  kDerived,  ///< triggered with one explicit dependency
};

/// One step of a schedule. Plain data; printable with ToString().
struct SimOp {
  SimOpKind kind = SimOpKind::kQuiesce;
  uint16_t provider = 0;      ///< provider pool index
  uint16_t key = 0;           ///< key pool index
  uint16_t mech = 0;          ///< SimMechanism (define/redefine)
  uint16_t dep_provider = 0;  ///< dependency target (kDerived)
  uint16_t dep_key = 0;
  uint16_t slot = 0;          ///< subscription slot (subscribe/unsubscribe)
  int64_t arg = 0;            ///< advance micros / tear bytes / fault pack
};

/// Knobs of one simulated configuration. `federation` and `crashes` are
/// mutually exclusive (a crash restarts the server manager; reconciling a
/// reborn server's sequence space is out of scope for the harness).
struct SimProfile {
  int providers = 3;
  int keys = 4;  ///< keys per provider
  int ops = 120;
  int sub_slots = 12;
  bool durability = true;
  bool federation = false;
  bool crashes = true;
  bool faults = true;  ///< message faults on the federation link
  Duration periodic_period = 40 * kMicrosPerMilli;
  Duration max_staleness = 200 * kMicrosPerMilli;
  Duration quiesce_settle = 150 * kMicrosPerMilli;
};

/// A fully materialized schedule. `ops` may be edited (the shrinker removes
/// entries); `seed`/`profile` are carried for reporting and reruns.
struct SimSchedule {
  uint64_t seed = 0;
  SimProfile profile;
  std::vector<SimOp> ops;
};

/// Derives the per-seed feature mix from a base profile: seeds rotate
/// through {crashes only, federation only, pure local} among the features
/// the base profile allows, so one CLI run covers all configurations while
/// each individual seed stays replayable in isolation.
SimProfile ProfileForSeed(uint64_t seed, const SimProfile& base);

/// Generates the schedule for (seed, profile). Pure and deterministic.
SimSchedule GenerateSchedule(uint64_t seed, const SimProfile& profile);

/// One-line rendering of an op, e.g. "commit p1/k2" or "advance 13ms".
std::string ToString(const SimOp& op);

/// Multi-line rendering of a schedule (one op per line, indexed).
std::string Describe(const SimSchedule& schedule);

}  // namespace sim
}  // namespace pipes
