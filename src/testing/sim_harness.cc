#include "testing/sim_harness.h"

#include <stdio.h>
#include <stdlib.h>

#include <filesystem>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/fault_injection.h"
#include "common/rng.h"
#include "common/scheduler.h"
#include "common/status.h"
#include "metadata/descriptor.h"
#include "metadata/manager.h"
#include "metadata/persistence.h"
#include "metadata/provider.h"
#include "metadata/remote.h"
#include "net/loopback.h"
#include "net/transport.h"
#include "testing/reference_model.h"

namespace pipes {
namespace sim {

namespace {

constexpr const char* kScopeS2C = "sim.s2c";
constexpr const char* kScopeC2S = "sim.c2s";

std::string KeyName(int key) { return "k" + std::to_string(key); }

/// Endpoint shim for --inject-bug: re-delivers every third update push with
/// a forged (incremented) sequence number. The forged frame carries an *old*
/// value under a *new* seq, so the mirror's duplicate suppression — which is
/// keyed on seq — admits it and a duplicate notification reaches dependents.
/// The observed-value oracle must catch exactly this.
class DuplicatingEndpoint final : public net::Endpoint {
 public:
  explicit DuplicatingEndpoint(net::Endpoint& inner) : inner_(inner) {}

  Status Send(const net::Frame& frame) override { return inner_.Send(frame); }

  void SetReceiver(Receiver receiver) override {
    inner_.SetReceiver(
        [this, receiver = std::move(receiver)](const net::Frame& f) {
          receiver(f);
          if (f.type == kFrameUpdatePush && ++pushes_ % 3 == 0) {
            net::Frame dup = f;
            dup.seq += 1;
            receiver(dup);
          }
        });
  }

  bool connected() const override { return inner_.connected(); }
  void Close() override { inner_.Close(); }

 private:
  net::Endpoint& inner_;
  uint64_t pushes_ = 0;
};

bool ValueMatches(const MetadataValue& v, const std::optional<double>& want) {
  if (!want.has_value()) return v.is_null();
  return !v.is_null() && v.AsDouble() == *want;
}

std::string ValueStr(const MetadataValue& v) {
  if (v.is_null()) return "null";
  std::ostringstream os;
  os << v.AsDouble();
  return os.str();
}

std::string OptStr(const std::optional<double>& v) {
  if (!v.has_value()) return "null";
  std::ostringstream os;
  os << *v;
  return os.str();
}

/// One schedule execution: the real stack + the reference model, lock-step.
class SimHarness {
 public:
  SimHarness(const SimSchedule& schedule, const SimRunOptions& opts)
      : schedule_(schedule),
        profile_(schedule.profile),
        opts_(opts),
        model_(schedule.profile),
        rng_(schedule.seed * 0x9E3779B97F4A7C15ULL + 0x100001B3ULL),
        injector_(schedule.seed * 0x100001B3ULL + 0xC0FFEEULL) {}

  ~SimHarness() { Teardown(); }

  SimRunResult Run() {
    SimRunResult result;
    std::string err = Setup();
    sysclock_baseline_ = SystemClockUseCount();
    if (err.empty()) {
      for (size_t i = 0; i < schedule_.ops.size(); ++i) {
        err = ExecuteOp(i, schedule_.ops[i]);
        log_ << "\n";
        if (!err.empty()) {
          result.failed_op = static_cast<int>(i);
          break;
        }
      }
    }
    if (!err.empty()) {
      result.ok = false;
      result.failure = err;
    }
    result.event_log = log_.str();
    return result;
  }

 private:
  struct Slot {
    int provider = 0;
    int key = 0;
    MetadataSubscription sub;
  };

  int P() const { return profile_.providers; }
  int K() const { return profile_.keys; }
  size_t CellIndex(int p, int k) const {
    return static_cast<size_t>(p) * static_cast<size_t>(K()) +
           static_cast<size_t>(k);
  }

  std::vector<MetadataProvider*> RawProviders() const {
    std::vector<MetadataProvider*> out;
    for (const auto& p : providers_) {
      if (p) out.push_back(p.get());
    }
    return out;
  }

  /// The shared evaluator convention: value-bearing mechanisms read their
  /// source cell; derived items compute Dep(0) + kDerivedOffset.
  MetadataDescriptor MakeDescriptor(int p, int k, SimMechanism mech,
                                    int dep_provider, int dep_key) {
    const MetadataKey key = KeyName(k);
    double* cell = &cells_[CellIndex(p, k)];
    auto cell_eval = [cell](EvalContext&) { return MetadataValue(*cell); };
    switch (mech) {
      case SimMechanism::kStatic:
        return MetadataDescriptor::Static(key,
                                          MetadataValue(StaticValueFor(p, k)));
      case SimMechanism::kOnDemand:
        return MetadataDescriptor::OnDemand(key).WithEvaluator(cell_eval);
      case SimMechanism::kPeriodic:
        return MetadataDescriptor::Periodic(key, profile_.periodic_period)
            .WithEvaluator(cell_eval);
      case SimMechanism::kTriggered:
        return MetadataDescriptor::Triggered(key).WithEvaluator(cell_eval);
      case SimMechanism::kDerived:
        break;
    }
    return MetadataDescriptor::Triggered(key)
        .DependsOn({DependencySpec::Explicit(providers_[dep_provider].get(),
                                             KeyName(dep_key))})
        .WithEvaluator([](EvalContext& ctx) {
          MetadataValue v = ctx.Dep(0);
          if (v.is_null()) return v;
          return MetadataValue(v.AsDouble() + kDerivedOffset);
        });
  }

  /// Maps a live descriptor back to its model-level definition (for the
  /// recovered view). Unresolvable dependency targets become kUnknownDep.
  DurableState::Def DefFromDescriptor(const MetadataDescriptor& desc) const {
    DurableState::Def def;
    switch (desc.mechanism()) {
      case UpdateMechanism::kStatic:
        def.mech = SimMechanism::kStatic;
        break;
      case UpdateMechanism::kOnDemand:
        def.mech = SimMechanism::kOnDemand;
        break;
      case UpdateMechanism::kPeriodic:
        def.mech = SimMechanism::kPeriodic;
        break;
      case UpdateMechanism::kTriggered: {
        if (desc.dependency_specs().empty()) {
          def.mech = SimMechanism::kTriggered;
          break;
        }
        def.mech = SimMechanism::kDerived;
        const DependencySpec& spec = desc.dependency_specs()[0];
        def.dep_provider = kUnknownDep;
        def.dep_key = kUnknownDep;
        for (int i = 0; i < static_cast<int>(providers_.size()); ++i) {
          if (providers_[i] && providers_[i].get() == spec.provider) {
            def.dep_provider = i;
            break;
          }
        }
        if (spec.key.size() >= 2 && spec.key[0] == 'k') {
          def.dep_key = std::atoi(spec.key.c_str() + 1);
        }
        break;
      }
    }
    return def;
  }

  ItemId IdOfHandler(const MetadataHandler& handler) const {
    const std::string& label = handler.owner().label();
    const MetadataKey& key = handler.key();
    ItemId id{-1, -1};
    if (label.size() >= 2 && label[0] == 'p') {
      id.first = std::atoi(label.c_str() + 1);
    }
    if (key.size() >= 2 && key[0] == 'k') {
      id.second = std::atoi(key.c_str() + 1);
    }
    return id;
  }

  std::string EnableDurabilityNow() {
    DurabilityConfig cfg;
    cfg.dir = dir_;
    cfg.checkpoint_period = 0;  // checkpoints are schedule ops
    Status st = manager_->EnableDurability(cfg, RawProviders());
    if (!st.ok()) return "EnableDurability failed: " + st.ToString();
    return "";
  }

  std::string Setup() {
    cells_.assign(static_cast<size_t>(P()) * static_cast<size_t>(K()), 0.0);
    slots_.resize(static_cast<size_t>(profile_.sub_slots));
    if (profile_.durability) {
      if (opts_.durability_dir.empty()) {
        char tmpl[] = "/tmp/pipes-sim-XXXXXX";
        char* d = ::mkdtemp(tmpl);
        if (d == nullptr) return "mkdtemp failed";
        dir_ = d;
        owns_dir_ = true;
      } else {
        dir_ = opts_.durability_dir;
      }
    }
    manager_ = std::make_unique<MetadataManager>(sched_, /*wave_stripes=*/1);
    providers_.reserve(static_cast<size_t>(P()));
    for (int p = 0; p < P(); ++p) {
      providers_.push_back(
          std::make_unique<MetadataProvider>("p" + std::to_string(p)));
    }
    if (profile_.durability) {
      std::string err = EnableDurabilityNow();
      if (!err.empty()) return err;
    }
    if (profile_.federation) return SetupFederation();
    return "";
  }

  std::string SetupFederation() {
    net::LoopbackLink::Options lo;
    lo.latency = 1 * kMicrosPerMilli;
    lo.injector = &injector_;
    lo.scope_a_to_b = kScopeS2C;
    lo.scope_b_to_a = kScopeC2S;
    link_ = std::make_unique<net::LoopbackLink>(sched_, lo);
    server_ = std::make_unique<MetadataFederationServer>(*manager_);
    Status st = server_->ExportProvider(*providers_[0]);
    if (!st.ok()) return "ExportProvider failed: " + st.ToString();
    server_->Serve(link_->a());

    client_mgr_ = std::make_unique<MetadataManager>(sched_, /*wave_stripes=*/1);
    net::Endpoint* client_ep = &link_->b();
    if (opts_.inject_duplicates) {
      dup_endpoint_ = std::make_unique<DuplicatingEndpoint>(link_->b());
      client_ep = dup_endpoint_.get();
    }
    FederationOptions fo;
    fo.heartbeat_period = 20 * kMicrosPerMilli;
    fo.rng_seed = schedule_.seed * 0x9E3779B9ULL + 0xFEDBEEFULL;
    remote_provider_ = std::make_unique<RemoteMetadataProvider>(
        "p0", *client_mgr_, *client_ep, fo);
    st = remote_provider_->Mirror(KeyName(0), profile_.max_staleness);
    if (!st.ok()) return "Mirror failed: " + st.ToString();

    observed_ = std::make_shared<std::vector<double>>();
    observer_provider_ = std::make_unique<MetadataProvider>("obs");
    auto obs = observed_;
    st = observer_provider_->metadata_registry().Define(
        MetadataDescriptor::Triggered("watch")
            .DependsOn(
                {DependencySpec::Explicit(remote_provider_.get(), KeyName(0))})
            .WithEvaluator([obs](EvalContext& ctx) {
              MetadataValue v = ctx.Dep(0);
              if (!v.is_null()) obs->push_back(v.AsDouble());
              return v;
            }));
    if (!st.ok()) return "observer define failed: " + st.ToString();
    auto sub = client_mgr_->Subscribe(*observer_provider_, "watch");
    if (!sub.ok()) return "observer subscribe failed";
    observer_sub_ = std::move(sub.value());
    return "";
  }

  void Teardown() {
    observer_sub_.Reset();
    observer_provider_.reset();
    remote_provider_.reset();
    server_.reset();
    client_mgr_.reset();
    for (auto& s : slots_) s.reset();
    if (manager_ && manager_->durability_enabled()) {
      manager_->DisableDurability();
    }
    providers_.clear();
    manager_.reset();
    dup_endpoint_.reset();
    link_.reset();
    if (owns_dir_ && !dir_.empty()) {
      std::error_code ec;
      std::filesystem::remove_all(dir_, ec);
    }
  }

  std::string Divergence(const char* what, OpOutcome expect,
                         const Status& real) {
    std::ostringstream os;
    os << what << ": model expected "
       << (expect == OpOutcome::kOk ? "success" : "failure") << ", real "
       << (real.ok() ? "succeeded" : ("failed: " + real.ToString()));
    return os.str();
  }

  std::string ExecuteOp(size_t index, const SimOp& op) {
    log_ << "#" << index << " t=" << sched_.virtual_clock().Now() << " "
         << ToString(op);
    const int p = op.provider;
    const int k = op.key;
    switch (op.kind) {
      case SimOpKind::kDefine:
      case SimOpKind::kRedefine: {
        const bool redefine = op.kind == SimOpKind::kRedefine;
        SimMechanism mech = static_cast<SimMechanism>(op.mech);
        OpOutcome expect =
            redefine ? model_.Redefine(p, k, mech, op.dep_provider, op.dep_key)
                     : model_.Define(p, k, mech, op.dep_provider, op.dep_key);
        log_ << " -> " << ToString(expect);
        if (expect == OpOutcome::kSkip) break;
        MetadataDescriptor desc =
            MakeDescriptor(p, k, mech, op.dep_provider, op.dep_key);
        Status st = redefine
                        ? providers_[p]->metadata_registry().Redefine(
                              std::move(desc))
                        : providers_[p]->metadata_registry().Define(
                              std::move(desc));
        if (st.ok() != (expect == OpOutcome::kOk)) {
          return Divergence(redefine ? "redefine" : "define", expect, st);
        }
        break;
      }
      case SimOpKind::kUndefine: {
        OpOutcome expect = model_.Undefine(p, k);
        log_ << " -> " << ToString(expect);
        if (expect == OpOutcome::kSkip) break;
        Status st = providers_[p]->metadata_registry().Undefine(KeyName(k));
        if (st.ok() != (expect == OpOutcome::kOk)) {
          return Divergence("undefine", expect, st);
        }
        break;
      }
      case SimOpKind::kSubscribe: {
        auto& slot = slots_[op.slot % slots_.size()];
        if (slot.has_value()) {
          OpOutcome rel = model_.Unsubscribe(slot->provider, slot->key);
          if (rel != OpOutcome::kOk) {
            return "internal: model rejected release of a live slot";
          }
          slot->sub.Reset();
          slot.reset();
        }
        OpOutcome expect = model_.Subscribe(p, k);
        log_ << " -> " << ToString(expect);
        if (expect == OpOutcome::kSkip) break;
        auto res = manager_->Subscribe(*providers_[p], KeyName(k));
        if (res.ok() != (expect == OpOutcome::kOk)) {
          return Divergence("subscribe", expect,
                            res.ok() ? Status::OK() : res.status());
        }
        if (res.ok()) slot = Slot{p, k, std::move(res.value())};
        break;
      }
      case SimOpKind::kUnsubscribe: {
        auto& slot = slots_[op.slot % slots_.size()];
        if (!slot.has_value()) {
          log_ << " -> noop";
          break;
        }
        OpOutcome expect = model_.Unsubscribe(slot->provider, slot->key);
        if (expect != OpOutcome::kOk) {
          return "internal: model rejected unsubscribe of a live slot";
        }
        slot->sub.Reset();
        slot.reset();
        log_ << " -> ok";
        break;
      }
      case SimOpKind::kCommit: {
        const double value = next_commit_value_;
        next_commit_value_ += 1.0;
        cells_[CellIndex(p, k)] = value;
        OpOutcome expect = model_.Commit(p, k, value);
        log_ << " -> " << ToString(expect) << " v=" << value;
        if (expect == OpOutcome::kOk) {
          manager_->FireEvent(*providers_[p], KeyName(k));
          if (profile_.federation && p == 0 && k == 0 && fed_pinned_) {
            // The export item's evaluator re-read the anchor on this wave.
            model_.OnDemandEvaluated(0, 0);
          }
        }
        break;
      }
      case SimOpKind::kAdvance:
        sched_.RunFor(op.arg);
        MaybePinFederation();
        log_ << " -> ok";
        break;
      case SimOpKind::kRetireProvider: {
        OpOutcome expect = model_.RetireProvider(p);
        log_ << " -> " << ToString(expect);
        if (expect == OpOutcome::kOk) providers_[p].reset();
        break;
      }
      case SimOpKind::kCheckpoint: {
        if (manager_->durability() == nullptr) {
          log_ << " -> noop";
          break;
        }
        Status st = manager_->durability()->CheckpointNow();
        if (!st.ok()) return "CheckpointNow failed: " + st.ToString();
        model_.Checkpoint();
        log_ << " -> ok";
        break;
      }
      case SimOpKind::kFlushJournal: {
        if (manager_->durability() == nullptr) {
          log_ << " -> noop";
          break;
        }
        Status st = manager_->durability()->FlushJournal(true);
        if (!st.ok()) return "FlushJournal failed: " + st.ToString();
        log_ << " -> ok";
        break;
      }
      case SimOpKind::kCrashRestart:
        return CrashRestart(op.arg);
      case SimOpKind::kPartition:
        injector_.PartitionLink(kScopeS2C);
        injector_.PartitionLink(kScopeC2S);
        partitioned_ = true;
        log_ << " -> ok";
        break;
      case SimOpKind::kHeal:
        injector_.HealLink(kScopeS2C);
        injector_.HealLink(kScopeC2S);
        injector_.DisarmMessages(kScopeS2C);
        injector_.DisarmMessages(kScopeC2S);
        partitioned_ = false;
        log_ << " -> ok";
        break;
      case SimOpKind::kFaultBurst: {
        MessageFaultSpec spec;
        spec.drop_probability = static_cast<double>(op.arg % 1000) / 1000.0;
        spec.duplicate_probability =
            static_cast<double>((op.arg / 1000) % 1000) / 1000.0;
        const int delay_ms = static_cast<int>(op.arg / 1000000);
        if (delay_ms > 0) {
          spec.delay_probability = 0.2;
          spec.delay = delay_ms * kMicrosPerMilli;
        }
        injector_.ArmMessages(kScopeS2C, spec);
        injector_.ArmMessages(kScopeC2S, spec);
        log_ << " -> ok";
        break;
      }
      case SimOpKind::kQuiesce:
        return QuiesceSweep();
    }
    return "";
  }

  /// Tears the world down as a crash would, truncates the journal tail when
  /// requested, recovers into a fresh manager, and cross-checks the
  /// recovered state against the model's durable expectation.
  std::string CrashRestart(int64_t tear_bytes) {
    const bool torn = tear_bytes > 0;
    // The application decides, before restarting, which of its items it
    // re-defines eagerly (predefined, live) vs. lazily (recovered shells).
    std::map<ItemId, DurableState::Def> predefined;
    for (const auto& [id, def] : model_.durable().defs) {
      if (rng_.Bernoulli(0.5)) predefined[id] = def;
    }
    manager_->DisableDurability();
    for (auto& s : slots_) s.reset();
    providers_.clear();
    manager_.reset();
    if (torn) {
      std::string newest = NewestJournal();
      if (!newest.empty()) {
        if (!TruncateFileTail(newest, static_cast<uint64_t>(tear_bytes))) {
          return "TruncateFileTail failed";
        }
      }
    }
    manager_ = std::make_unique<MetadataManager>(sched_, /*wave_stripes=*/1);
    for (int p = 0; p < P(); ++p) {
      providers_.push_back(
          std::make_unique<MetadataProvider>("p" + std::to_string(p)));
    }
    for (const auto& [id, def] : predefined) {
      Status st = providers_[id.first]->metadata_registry().Define(
          MakeDescriptor(id.first, id.second, def.mech, def.dep_provider,
                         def.dep_key));
      if (!st.ok()) return "crash predefine failed: " + st.ToString();
    }
    auto recovered = manager_->RecoverFrom(dir_, RawProviders());
    if (!recovered.ok()) {
      return "RecoverFrom failed: " + recovered.status().ToString();
    }
    RecoveryReport report = std::move(recovered.value());

    RecoveredView view;
    for (int p = 0; p < P(); ++p) {
      auto& reg = providers_[p]->metadata_registry();
      for (int k = 0; k < K(); ++k) {
        auto desc = reg.Find(KeyName(k));
        if (desc) view.defs[{p, k}] = DefFromDescriptor(*desc);
        auto handler = reg.GetHandler(KeyName(k));
        if (handler) {
          MetadataValue v = MetadataManager::PeekValue(*handler);
          view.values[{p, k}] =
              v.is_null() ? std::nullopt : std::optional<double>(v.AsDouble());
        }
      }
    }
    for (const auto& sub : report.subscriptions) {
      if (!sub.handler()) return "recovered subscription without handler";
      ItemId id = IdOfHandler(*sub.handler());
      if (id.first < 0 || id.second < 0) {
        return "recovered subscription on unknown item";
      }
      ++view.subs[id];
    }

    std::string err = model_.ApplyCrashRecovery(view, predefined, torn);
    if (!err.empty()) return err;

    size_t next = 0;
    for (auto& sub : report.subscriptions) {
      if (next >= slots_.size()) {
        return "more recovered subscriptions than slots";
      }
      ItemId id = IdOfHandler(*sub.handler());
      slots_[next++] = Slot{id.first, id.second, std::move(sub)};
    }

    err = EnableDurabilityNow();
    if (!err.empty()) return err;
    log_ << " -> ok defs=" << view.defs.size() << " subs="
         << report.subscriptions.size() << " vals=" << view.values.size();
    return "";
  }

  std::string NewestJournal() const {
    // Generations carry a zero-padded suffix, so the lexically greatest
    // journal file is the newest one (the only one a tear can hit).
    std::string best;
    std::error_code ec;
    for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
      std::string name = entry.path().filename().string();
      if (name.rfind("journal-", 0) == 0 && name > best) best = name;
    }
    if (best.empty()) return "";
    return dir_ + "/" + best;
  }

  std::string CheckObserved() const {
    if (!observed_) return "";
    for (size_t i = 1; i < observed_->size(); ++i) {
      if (!((*observed_)[i] > (*observed_)[i - 1])) {
        std::ostringstream os;
        os << "duplicate or regressing remote notification: observed[" << i - 1
           << "]=" << (*observed_)[i - 1] << " then observed[" << i
           << "]=" << (*observed_)[i];
        return os.str();
      }
    }
    return "";
  }

  /// Mirrors the server-side export inclusion into the model. The mirror's
  /// subscribe-req is sent at setup (t=0) and lands after one link latency,
  /// i.e. during the first RunFor of any kind; the export item then includes
  /// the anchor and evaluates it once at activation. If the anchor is not
  /// subscribable (a shrunk schedule may have lost its define), the server's
  /// export fails the same way and keeps retrying, so both sides stay
  /// unpinned.
  void MaybePinFederation() {
    if (!profile_.federation || fed_pinned_) return;
    if (model_.Subscribe(0, 0) != OpOutcome::kOk) return;
    model_.OnDemandEvaluated(0, 0);
    fed_pinned_ = true;
  }

  std::string QuiesceSweep() {
    sched_.RunFor(profile_.quiesce_settle);
    MaybePinFederation();
    if (SystemClockUseCount() != sysclock_baseline_) {
      return "SystemClock was used on a sim-reachable path";
    }

    size_t included_total = 0;
    for (int p = 0; p < P(); ++p) {
      if (!providers_[p]) {
        if (!model_.ProviderRetired(p)) {
          return "provider p" + std::to_string(p) +
                 " destroyed but model says live";
        }
        continue;
      }
      if (model_.ProviderRetired(p)) {
        return "provider p" + std::to_string(p) +
               " live but model says retired";
      }
      auto& reg = providers_[p]->metadata_registry();
      std::vector<int> model_keys = model_.AvailableKeys(p);
      std::vector<MetadataKey> real_keys = reg.AvailableKeys();
      if (model_keys.size() != real_keys.size()) {
        return "p" + std::to_string(p) + ": available-key count mismatch (" +
               std::to_string(real_keys.size()) + " real vs " +
               std::to_string(model_keys.size()) + " model)";
      }
      for (size_t i = 0; i < model_keys.size(); ++i) {
        if (real_keys[i] != KeyName(model_keys[i])) {
          return "p" + std::to_string(p) + ": available keys diverge at " +
                 real_keys[i];
        }
      }
      const size_t real_included = reg.included_count();
      if (real_included != model_.IncludedCount(p)) {
        return "p" + std::to_string(p) + ": included_count " +
               std::to_string(real_included) + " real vs " +
               std::to_string(model_.IncludedCount(p)) + " model";
      }
      included_total += real_included;
      for (int k = 0; k < K(); ++k) {
        const bool inc = reg.IsIncluded(KeyName(k));
        if (inc != model_.IsIncluded(p, k)) {
          return "p" + std::to_string(p) + "/k" + std::to_string(k) +
                 ": inclusion diverges (real " + (inc ? "yes" : "no") + ")";
        }
        if (!inc) continue;
        auto handler = reg.GetHandler(KeyName(k));
        if (!handler) {
          return "p" + std::to_string(p) + "/k" + std::to_string(k) +
                 ": included but no handler";
        }
        const ModelItem* item = model_.FindItem(p, k);
        if (item && item->value_checked) {
          MetadataValue v = MetadataManager::PeekValue(*handler);
          if (!ValueMatches(v, item->value)) {
            return "p" + std::to_string(p) + "/k" + std::to_string(k) +
                   ": stored value " + ValueStr(v) + " != model " +
                   OptStr(item->value);
          }
        }
      }
    }

    // Slot sweep: Get() through every live subscription — this also covers
    // handlers frozen by provider retirement, which the registry walk above
    // cannot reach.
    for (auto& slot : slots_) {
      if (!slot.has_value()) continue;
      const ModelItem* item = model_.FindItem(slot->provider, slot->key);
      if (!item) {
        return "slot holds p" + std::to_string(slot->provider) + "/k" +
               std::to_string(slot->key) + " but model lost the item";
      }
      MetadataValue v = slot->sub.Get();
      if (item->mech == SimMechanism::kOnDemand && !item->shell &&
          !item->retired) {
        model_.OnDemandEvaluated(slot->provider, slot->key);
        item = model_.FindItem(slot->provider, slot->key);
      }
      if (item->value_checked && !ValueMatches(v, item->value)) {
        return "slot get p" + std::to_string(slot->provider) + "/k" +
               std::to_string(slot->key) + ": " + ValueStr(v) + " != model " +
               OptStr(item->value);
      }
    }

    std::string err;
    if (profile_.federation) {
      err = CheckObserved();
      if (!err.empty()) return err;
      if (!partitioned_) {
        // Convergence: the healed mirror must reach the model's anchor value
        // (resyncs fire at heartbeat cadence, so allow several rounds).
        const double want = model_.cell(0, 0);
        bool converged = false;
        for (int round = 0; round < 40 && !converged; ++round) {
          auto handler = remote_provider_->metadata_registry().GetHandler(
              KeyName(0));
          if (handler) {
            MetadataValue v = MetadataManager::PeekValue(*handler);
            if (!v.is_null() && v.AsDouble() == want) {
              converged = true;
              break;
            }
          }
          sched_.RunFor(50 * kMicrosPerMilli);
        }
        if (!converged) {
          std::ostringstream os;
          os << "mirror failed to converge to " << want;
          return os.str();
        }
        err = CheckObserved();
        if (!err.empty()) return err;
      }
    }
    log_ << " -> ok inc=" << included_total;
    if (profile_.federation) log_ << " obs=" << observed_->size();
    return "";
  }

  const SimSchedule& schedule_;
  const SimProfile& profile_;
  SimRunOptions opts_;
  uint64_t sysclock_baseline_ = 0;

  VirtualTimeScheduler sched_;
  ReferenceModel model_;
  Rng rng_;  ///< harness-level choices (crash predefinitions)
  FaultInjector injector_;

  std::string dir_;
  bool owns_dir_ = false;
  std::vector<double> cells_;  ///< evaluator-visible source cells
  double next_commit_value_ = 1.0;
  std::ostringstream log_;

  std::unique_ptr<MetadataManager> manager_;
  std::vector<std::unique_ptr<MetadataProvider>> providers_;
  std::vector<std::optional<Slot>> slots_;

  // Federation fixture (present only when profile_.federation).
  std::unique_ptr<net::LoopbackLink> link_;
  std::unique_ptr<DuplicatingEndpoint> dup_endpoint_;
  std::unique_ptr<MetadataFederationServer> server_;
  std::unique_ptr<MetadataManager> client_mgr_;
  std::unique_ptr<RemoteMetadataProvider> remote_provider_;
  std::unique_ptr<MetadataProvider> observer_provider_;
  MetadataSubscription observer_sub_;
  std::shared_ptr<std::vector<double>> observed_;
  bool partitioned_ = false;
  bool fed_pinned_ = false;
};

}  // namespace

SimRunResult RunSchedule(const SimSchedule& schedule,
                         const SimRunOptions& opts) {
  SimHarness harness(schedule, opts);
  return harness.Run();
}

}  // namespace sim
}  // namespace pipes
