#include "testing/reference_model.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <sstream>

namespace pipes {
namespace sim {

namespace {

std::string IdStr(ItemId id) {
  std::ostringstream os;
  os << "p" << id.first << "/k" << id.second;
  return os.str();
}

std::string ValStr(const std::optional<double>& v) {
  if (!v) return "null";
  std::ostringstream os;
  os << *v;
  return os.str();
}

}  // namespace

const char* ToString(OpOutcome outcome) {
  switch (outcome) {
    case OpOutcome::kOk:
      return "ok";
    case OpOutcome::kFail:
      return "fail";
    case OpOutcome::kSkip:
      return "skip";
  }
  return "?";
}

ReferenceModel::ReferenceModel(const SimProfile& profile) : profile_(profile) {
  providers_.resize(static_cast<size_t>(profile.providers));
}

ModelItem* ReferenceModel::Find(int provider, int key) {
  auto& items = providers_[static_cast<size_t>(provider)].items;
  auto it = items.find(key);
  return it == items.end() ? nullptr : &it->second;
}

const ModelItem* ReferenceModel::FindItem(int provider, int key) const {
  return const_cast<ReferenceModel*>(this)->Find(provider, key);
}

bool ReferenceModel::ProviderRetired(int provider) const {
  return providers_[static_cast<size_t>(provider)].retired;
}

bool ReferenceModel::IsAvailable(int provider, int key) const {
  if (ProviderRetired(provider)) return false;
  return FindItem(provider, key) != nullptr;
}

bool ReferenceModel::IsIncluded(int provider, int key) const {
  const ModelItem* item = FindItem(provider, key);
  return item != nullptr && item->included;
}

size_t ReferenceModel::IncludedCount(int provider) const {
  size_t n = 0;
  for (const auto& [key, item] : providers_[static_cast<size_t>(provider)].items) {
    if (item.included) ++n;
  }
  return n;
}

std::vector<int> ReferenceModel::AvailableKeys(int provider) const {
  std::vector<int> keys;
  if (ProviderRetired(provider)) return keys;
  for (const auto& [key, item] : providers_[static_cast<size_t>(provider)].items) {
    keys.push_back(key);
  }
  return keys;
}

double ReferenceModel::cell(int provider, int key) const {
  auto it = cells_.find({provider, key});
  return it == cells_.end() ? 0.0 : it->second;
}

// --- durable bookkeeping ----------------------------------------------------

void ReferenceModel::SetDurableValue(ItemId id) {
  const ModelItem* item = FindItem(id.first, id.second);
  assert(item != nullptr);
  durable_.values[id] = item->value;
  if (item->value_checked) {
    durable_.unchecked.erase(id);
  } else {
    durable_.unchecked.insert(id);
    window_.unchecked.insert(id);
  }
  RecordWindow(id);
}

void ReferenceModel::RecordWindow(ItemId id) {
  auto push_unique = [](auto& vec, const auto& state) {
    if (vec.empty() || !(vec.back() == state)) vec.push_back(state);
  };
  std::optional<DurableState::Def> def;
  if (auto it = durable_.defs.find(id); it != durable_.defs.end()) {
    def = it->second;
  }
  int subs = 0;
  if (auto it = durable_.subs.find(id); it != durable_.subs.end()) {
    subs = it->second;
  }
  std::optional<double> value;
  if (auto it = durable_.values.find(id); it != durable_.values.end()) {
    value = it->second;
  }
  push_unique(window_.defs[id], def);
  push_unique(window_.subs[id], subs);
  push_unique(window_.values[id], value);
}

void ReferenceModel::Checkpoint() {
  // A checkpoint snapshots *live* state (persistence.cc CheckpointLocked
  // gathers defs, external refs, and non-null handler values from the
  // registries) and discards the old journal generation, so durable state
  // that had drifted from live state — e.g. a last-known-good value kept in
  // the journal while a re-activated shell handler reads null — is dropped,
  // not carried forward.
  RebaselineDurable();
}

void ReferenceModel::RebaselineDurable() {
  durable_ = DurableState{};
  for (int p = 0; p < profile_.providers; ++p) {
    if (providers_[static_cast<size_t>(p)].retired) continue;
    for (const auto& [key, item] : providers_[static_cast<size_t>(p)].items) {
      ItemId id{p, key};
      durable_.defs[id] =
          DurableState::Def{item.mech, item.dep_provider, item.dep_key};
      if (item.external_refs > 0) durable_.subs[id] = item.external_refs;
      if (item.included) {
        durable_.values[id] = item.value;
        if (!item.value_checked) durable_.unchecked.insert(id);
      }
    }
  }
  floor_ = durable_;
  window_ = DurableWindow{};
}

// --- value semantics --------------------------------------------------------

bool ReferenceModel::DepTainted(ItemId id) const {
  const ModelItem* item = FindItem(id.first, id.second);
  if (item == nullptr) return true;
  return item->mech == SimMechanism::kPeriodic || !item->value_checked;
}

std::optional<double> ReferenceModel::DepGet(ItemId id) {
  ModelItem* item = Find(id.first, id.second);
  assert(item != nullptr && "DepGet on a vanished dependency");
  // A live on-demand dependency evaluates at access time; its cache (and
  // the journal) pick up the current cell. Everything else — triggered and
  // periodic caches, frozen retired handlers, throwing shells, statics —
  // serves its stored value.
  if (item->mech == SimMechanism::kOnDemand && !item->shell &&
      !item->retired) {
    item->value = cell(id.first, id.second);
    item->value_checked = true;
    if (!providers_[static_cast<size_t>(id.first)].retired) {
      SetDurableValue(id);
    }
    return item->value;
  }
  return item->value;
}

void ReferenceModel::OnDemandEvaluated(int provider, int key) {
  ModelItem* item = Find(provider, key);
  assert(item != nullptr && item->included);
  assert(item->mech == SimMechanism::kOnDemand && !item->shell &&
         !item->retired);
  item->value = cell(provider, key);
  item->value_checked = true;
  SetDurableValue({provider, key});
}

// --- registry ops -----------------------------------------------------------

OpOutcome ReferenceModel::Define(int provider, int key, SimMechanism mech,
                                 int dep_provider, int dep_key) {
  if (ProviderRetired(provider)) return OpOutcome::kSkip;
  if (mech == SimMechanism::kDerived && ProviderRetired(dep_provider)) {
    // The descriptor would capture a pointer to a destroyed provider.
    return OpOutcome::kSkip;
  }
  auto& items = providers_[static_cast<size_t>(provider)].items;
  if (items.count(key) != 0) return OpOutcome::kFail;
  ModelItem item;
  item.mech = mech;
  if (mech == SimMechanism::kDerived) {
    item.dep_provider = dep_provider;
    item.dep_key = dep_key;
  }
  items[key] = item;
  ItemId id{provider, key};
  durable_.defs[id] = DurableState::Def{mech, item.dep_provider, item.dep_key};
  RecordWindow(id);
  return OpOutcome::kOk;
}

OpOutcome ReferenceModel::Redefine(int provider, int key, SimMechanism mech,
                                   int dep_provider, int dep_key) {
  if (ProviderRetired(provider)) return OpOutcome::kSkip;
  if (mech == SimMechanism::kDerived && ProviderRetired(dep_provider)) {
    return OpOutcome::kSkip;
  }
  ModelItem* item = Find(provider, key);
  if (item == nullptr) return OpOutcome::kFail;
  if (item->included) return OpOutcome::kFail;  // paper §4.4.2
  ModelItem fresh;
  fresh.mech = mech;
  if (mech == SimMechanism::kDerived) {
    fresh.dep_provider = dep_provider;
    fresh.dep_key = dep_key;
  }
  *item = fresh;  // redefinition replaces a recovered shell with a live def
  ItemId id{provider, key};
  durable_.defs[id] = DurableState::Def{mech, fresh.dep_provider, fresh.dep_key};
  RecordWindow(id);
  return OpOutcome::kOk;
}

OpOutcome ReferenceModel::Undefine(int provider, int key) {
  if (ProviderRetired(provider)) return OpOutcome::kSkip;
  ModelItem* item = Find(provider, key);
  if (item == nullptr) return OpOutcome::kFail;
  if (item->included) return OpOutcome::kFail;  // paper §4.4.2
  providers_[static_cast<size_t>(provider)].items.erase(key);
  ItemId id{provider, key};
  durable_.defs.erase(id);
  durable_.values.erase(id);
  durable_.unchecked.erase(id);
  RecordWindow(id);
  return OpOutcome::kOk;
}

// --- inclusion --------------------------------------------------------------

OpOutcome ReferenceModel::PlanInclude(ItemId id, std::vector<ItemId>* plan,
                                      std::set<ItemId>* in_path,
                                      std::set<ItemId>* planned) {
  if (ProviderRetired(id.first)) return OpOutcome::kSkip;
  ModelItem* item = Find(id.first, id.second);
  if (item == nullptr) return OpOutcome::kFail;  // NotFound
  if (item->included) return OpOutcome::kOk;     // satisfied, no descent
  if (planned->count(id) != 0) return OpOutcome::kOk;
  if (in_path->count(id) != 0) return OpOutcome::kFail;  // cycle
  in_path->insert(id);
  if (item->mech == SimMechanism::kDerived) {
    OpOutcome dep = PlanInclude({item->dep_provider, item->dep_key}, plan,
                                in_path, planned);
    if (dep != OpOutcome::kOk) {
      in_path->erase(id);
      return dep;
    }
  }
  in_path->erase(id);
  planned->insert(id);
  plan->push_back(id);  // dependencies first
  return OpOutcome::kOk;
}

void ReferenceModel::Include(ItemId id) {
  ModelItem* item = Find(id.first, id.second);
  assert(item != nullptr && !item->included);
  item->included = true;
  item->external_refs = 0;
  item->internal_refs = 0;
  if (item->mech == SimMechanism::kDerived) {
    ItemId dep{item->dep_provider, item->dep_key};
    ModelItem* dep_item = Find(dep.first, dep.second);
    assert(dep_item != nullptr && dep_item->included);
    ++dep_item->internal_refs;
    dependents_[dep].insert(id);
  }
  // Activation (handler.cc Activate): what each mechanism stores up front.
  if (item->shell) {
    // Shell evaluators throw, so evaluating activations (periodic,
    // triggered, derived) store nothing and the journal keeps its previous
    // last-known-good for the item. On-demand activation does not evaluate
    // at all — it stores (and journals) an explicit Null, clobbering the
    // last-known-good exactly like a live on-demand item would
    // (handler.cc OnDemandMetadataHandler::Activate). Recovery-time value
    // injection happens in ApplyCrashRecovery, not here.
    item->value = std::nullopt;
    item->value_checked = true;
    if (item->mech == SimMechanism::kOnDemand) SetDurableValue(id);
    return;
  } else {
    switch (item->mech) {
      case SimMechanism::kStatic:
        item->value = StaticValueFor(id.first, id.second);
        item->value_checked = true;
        break;
      case SimMechanism::kOnDemand:
        item->value = std::nullopt;  // Activate stores Null; DoGet evaluates
        item->value_checked = true;
        break;
      case SimMechanism::kPeriodic:
        // Evaluates at activation and on every tick; the exact tick timing
        // makes the cached value unpredictable between quiesce points.
        item->value = cell(id.first, id.second);
        item->value_checked = false;
        break;
      case SimMechanism::kTriggered:
        item->value = cell(id.first, id.second);
        item->value_checked = true;
        break;
      case SimMechanism::kDerived: {
        ItemId dep{item->dep_provider, item->dep_key};
        bool tainted = DepTainted(dep);
        std::optional<double> v = DepGet(dep);
        item->value = v ? std::optional<double>(*v + kDerivedOffset)
                        : std::nullopt;
        item->value_checked = !tainted;
        break;
      }
    }
  }
  SetDurableValue(id);  // every activation store is journaled
}

OpOutcome ReferenceModel::Subscribe(int provider, int key) {
  ItemId root{provider, key};
  std::vector<ItemId> plan;
  std::set<ItemId> in_path, planned;
  OpOutcome outcome = PlanInclude(root, &plan, &in_path, &planned);
  if (outcome != OpOutcome::kOk) return outcome;
  for (ItemId id : plan) Include(id);
  ModelItem* item = Find(provider, key);
  ++item->external_refs;
  ++durable_.subs[root];
  RecordWindow(root);
  return OpOutcome::kOk;
}

void ReferenceModel::MaybeRemove(ItemId id) {
  ModelItem* item = Find(id.first, id.second);
  if (item == nullptr || !item->included) return;
  if (item->external_refs > 0 || item->internal_refs > 0) return;
  item->included = false;
  ItemId dep{item->dep_provider, item->dep_key};
  bool derived = item->mech == SimMechanism::kDerived;
  if (providers_[static_cast<size_t>(id.first)].retired) {
    // A retired handler's item vanishes entirely: the registry died with
    // the provider, only the handler (now released) kept the item alive.
    providers_[static_cast<size_t>(id.first)].items.erase(id.second);
  } else {
    // The definition stays; the handler's cached value is gone. A later
    // re-subscription re-activates from the descriptor (which, for a
    // recovered shell, is still the throwing shell descriptor).
    item->value = std::nullopt;
    item->value_checked = true;
    item->external_refs = 0;
    item->internal_refs = 0;
  }
  if (derived) {
    dependents_[dep].erase(id);
    if (dependents_[dep].empty()) dependents_.erase(dep);
    ModelItem* dep_item = Find(dep.first, dep.second);
    if (dep_item != nullptr) {
      --dep_item->internal_refs;
      MaybeRemove(dep);
    }
  }
}

OpOutcome ReferenceModel::Unsubscribe(int provider, int key) {
  ModelItem* item = Find(provider, key);
  if (item == nullptr || item->external_refs <= 0) return OpOutcome::kFail;
  --item->external_refs;
  bool retired = item->retired;
  ItemId id{provider, key};
  if (!retired) {
    // Retired handlers skip the OnUnsubscribe journal hook (their provider's
    // durable state was already wiped by kRetire/kProviderGone).
    auto it = durable_.subs.find(id);
    if (it != durable_.subs.end() && --it->second <= 0) {
      durable_.subs.erase(it);
    }
    RecordWindow(id);
  }
  MaybeRemove(id);
  return OpOutcome::kOk;
}

// --- events -----------------------------------------------------------------

void ReferenceModel::Wave(ItemId origin) {
  // Closure: transitive dependents of the origin; the origin itself is
  // never refreshed (manager.cc RebuildWavePlan).
  std::set<ItemId> closure;
  std::deque<ItemId> frontier{origin};
  while (!frontier.empty()) {
    ItemId cur = frontier.front();
    frontier.pop_front();
    auto it = dependents_.find(cur);
    if (it == dependents_.end()) continue;
    for (ItemId dep : it->second) {
      if (closure.insert(dep).second) frontier.push_back(dep);
    }
  }
  // Refresh dependencies-first (Kahn over the closure subgraph; ties broken
  // by ItemId order, which only affects refresh order between independent
  // items and therefore not values).
  std::map<ItemId, int> indegree;
  for (ItemId id : closure) indegree[id] = 0;
  for (ItemId id : closure) {
    const ModelItem* item = FindItem(id.first, id.second);
    if (item == nullptr) continue;
    ItemId dep{item->dep_provider, item->dep_key};
    if (closure.count(dep) != 0) ++indegree[id];
  }
  std::vector<ItemId> order;
  std::set<ItemId> ready;
  for (const auto& [id, deg] : indegree) {
    if (deg == 0) ready.insert(id);
  }
  while (!ready.empty()) {
    ItemId id = *ready.begin();
    ready.erase(ready.begin());
    order.push_back(id);
    auto it = dependents_.find(id);
    if (it == dependents_.end()) continue;
    for (ItemId d : it->second) {
      auto deg = indegree.find(d);
      if (deg != indegree.end() && --deg->second == 0) ready.insert(d);
    }
  }
  for (ItemId id : order) {
    ModelItem* item = Find(id.first, id.second);
    if (item == nullptr) continue;
    if (item->retired) continue;  // frozen: refresh is a no-op
    if (item->shell) continue;    // evaluator throws: contained, value kept
    if (item->mech != SimMechanism::kDerived) continue;  // only triggered
    ItemId dep{item->dep_provider, item->dep_key};
    bool tainted = DepTainted(dep);
    std::optional<double> v = DepGet(dep);
    item->value = v ? std::optional<double>(*v + kDerivedOffset)
                    : std::nullopt;
    item->value_checked = !tainted;
    if (!providers_[static_cast<size_t>(id.first)].retired) {
      SetDurableValue(id);
    }
  }
}

OpOutcome ReferenceModel::Commit(int provider, int key, double cell_value) {
  ItemId id{provider, key};
  cells_[id] = cell_value;  // the source cell moves even when nothing fires
  if (ProviderRetired(provider)) return OpOutcome::kSkip;
  ModelItem* item = Find(provider, key);
  if (item == nullptr || !item->included) return OpOutcome::kSkip;
  Wave(id);
  return OpOutcome::kOk;
}

OpOutcome ReferenceModel::RetireProvider(int provider) {
  auto& prov = providers_[static_cast<size_t>(provider)];
  if (prov.retired) return OpOutcome::kSkip;
  prov.retired = true;
  // Durable state for the provider is wiped wholesale (kRetire zeroes the
  // subscription counts, kProviderGone drops the items from the image).
  std::vector<int> gone;
  for (auto it = prov.items.begin(); it != prov.items.end();) {
    ItemId id{provider, it->first};
    durable_.defs.erase(id);
    durable_.subs.erase(id);
    durable_.values.erase(id);
    durable_.unchecked.erase(id);
    if (it->second.included) {
      // Included handlers survive as frozen (retired) handlers for as long
      // as subscriptions or dependents hold them.
      it->second.retired = true;
      RecordWindow(id);
      ++it;
    } else {
      // Non-included definitions die with the registry.
      RecordWindow(id);
      it = prov.items.erase(it);
    }
  }
  return OpOutcome::kOk;
}

// --- crash + recovery -------------------------------------------------------

std::string ReferenceModel::ApplyCrashRecovery(
    const RecoveredView& view,
    const std::map<ItemId, DurableState::Def>& predefined, bool torn) {
  // Step 4's re-includes run through Include(), which journals activation
  // stores into durable_/window_ as usual; snapshot the pre-crash
  // expectation first so the comparisons don't read clobbered state.
  const DurableState pre = durable_;
  const DurableWindow pre_window = window_;
  // Acceptance sets: the floor state plus everything recorded since.
  auto def_window = [&](ItemId id) {
    std::vector<std::optional<DurableState::Def>> states;
    if (auto it = floor_.defs.find(id); it != floor_.defs.end()) {
      states.emplace_back(it->second);
    } else {
      states.emplace_back(std::nullopt);
    }
    if (auto it = pre_window.defs.find(id); it != pre_window.defs.end()) {
      states.insert(states.end(), it->second.begin(), it->second.end());
    }
    return states;
  };
  auto subs_window = [&](ItemId id) {
    std::vector<int> states;
    auto it = floor_.subs.find(id);
    states.push_back(it == floor_.subs.end() ? 0 : it->second);
    if (auto w = pre_window.subs.find(id); w != pre_window.subs.end()) {
      states.insert(states.end(), w->second.begin(), w->second.end());
    }
    return states;
  };
  auto values_window = [&](ItemId id) {
    std::vector<std::optional<double>> states;
    auto it = floor_.values.find(id);
    states.push_back(it == floor_.values.end() ? std::nullopt : it->second);
    if (auto w = pre_window.values.find(id); w != pre_window.values.end()) {
      states.insert(states.end(), w->second.begin(), w->second.end());
    }
    return states;
  };
  auto def_compatible = [](const DurableState::Def& candidate,
                           const DurableState::Def& seen) {
    if (candidate.mech != seen.mech) return false;
    if (seen.dep_provider == kUnknownDep) return true;
    return candidate.dep_provider == seen.dep_provider &&
           candidate.dep_key == seen.dep_key;
  };

  // Step 1: resolve the recovered definition set against expectations.
  // resolved: id -> (def, ambiguous dep target).
  std::map<ItemId, std::pair<DurableState::Def, bool>> resolved;
  for (const auto& [id, seen] : view.defs) {
    if (auto pre = predefined.find(id); pre != predefined.end()) {
      // Phase A keeps the application's descriptor for predefined keys,
      // whatever the journal says.
      resolved[id] = {pre->second, false};
      continue;
    }
    std::vector<DurableState::Def> compatible;
    for (const auto& cand : (torn ? def_window(id)
                                  : std::vector<std::optional<DurableState::Def>>{
                                        pre.defs.count(id)
                                            ? std::optional<DurableState::Def>(
                                                  pre.defs.at(id))
                                            : std::nullopt})) {
      if (!cand) continue;
      if (def_compatible(*cand, seen) &&
          (compatible.empty() || !(compatible.back() == *cand))) {
        compatible.push_back(*cand);
      }
    }
    if (compatible.empty()) {
      return "recovered definition " + IdStr(id) +
             " matches no expected definition state";
    }
    bool ambiguous = false;
    for (const auto& c : compatible) {
      if (!(c == compatible.back())) ambiguous = true;
    }
    resolved[id] = {compatible.back(), ambiguous};
  }
  // Items we expected that did not come back must have been legitimately
  // absent at some acceptable state.
  {
    std::set<ItemId> expected_ids;
    for (const auto& [id, def] : pre.defs) expected_ids.insert(id);
    for (const auto& [id, states] : pre_window.defs) expected_ids.insert(id);
    for (const auto& [id, def] : floor_.defs) expected_ids.insert(id);
    for (ItemId id : expected_ids) {
      if (view.defs.count(id) != 0) continue;
      if (!torn) {
        if (pre.defs.count(id) != 0) {
          return "definition " + IdStr(id) +
                 " missing after clean-tail recovery";
        }
        continue;
      }
      bool absent_ok = false;
      for (const auto& cand : def_window(id)) {
        if (!cand) absent_ok = true;
      }
      if (!absent_ok) {
        return "definition " + IdStr(id) +
               " lost in torn recovery but never absent in the window";
      }
    }
  }

  // Step 2: adopt — rebuild live state from the resolved view. All real
  // providers were recreated by the harness, so retirement flags clear.
  // Adoption must precede the subscription check: replay drops (rather than
  // fails on) subscriptions whose closure no longer plans against the
  // recovered definitions, so plannability is part of the expectation.
  dependents_.clear();
  for (auto& prov : providers_) {
    prov.retired = false;
    prov.items.clear();
  }
  std::set<ItemId> unreliable;  // ambiguous dep target: values unchecked
  for (const auto& [id, entry] : resolved) {
    const DurableState::Def& def = entry.first;
    ModelItem item;
    item.mech = def.mech;
    item.dep_provider = def.dep_provider;
    item.dep_key = def.dep_key;
    // Statics recover with their literal value (live); everything else
    // comes back as a throwing shell unless the application predefined it.
    item.shell = def.mech != SimMechanism::kStatic &&
                 predefined.count(id) == 0;
    providers_[static_cast<size_t>(id.first)].items[id.second] = item;
    if (entry.second) unreliable.insert(id);
  }
  auto plannable = [&](ItemId id) {
    std::vector<ItemId> plan;
    std::set<ItemId> in_path, planned;
    return PlanInclude(id, &plan, &in_path, &planned) == OpOutcome::kOk;
  };

  // Step 3: subscription counts. Replay gives up on an item's subscriptions
  // as soon as one fails to include (persistence.cc phase B), so a durably
  // subscribed item whose dependency closure was lost — e.g. it ran through
  // a retired provider's wiped definitions — recovers with none.
  {
    std::set<ItemId> sub_ids;
    for (const auto& [id, n] : view.subs) sub_ids.insert(id);
    for (const auto& [id, n] : pre.subs) sub_ids.insert(id);
    for (const auto& [id, n] : floor_.subs) sub_ids.insert(id);
    for (const auto& [id, states] : pre_window.subs) sub_ids.insert(id);
    for (ItemId id : sub_ids) {
      auto it = view.subs.find(id);
      int seen = it == view.subs.end() ? 0 : it->second;
      if (!plannable(id)) {
        if (seen != 0) {
          std::ostringstream os;
          os << "subscriptions of " << IdStr(id) << ": recovered " << seen
             << ", expected none (closure does not plan)";
          return os.str();
        }
        continue;
      }
      if (!torn) {
        auto want = pre.subs.find(id);
        int expected = want == pre.subs.end() ? 0 : want->second;
        if (seen != expected) {
          std::ostringstream os;
          os << "subscriptions of " << IdStr(id) << ": recovered " << seen
             << ", expected " << expected;
          return os.str();
        }
        continue;
      }
      auto states = subs_window(id);
      if (std::find(states.begin(), states.end(), seen) == states.end()) {
        std::ostringstream os;
        os << "subscriptions of " << IdStr(id) << ": recovered " << seen
           << ", never a window state";
        return os.str();
      }
    }
  }

  // Step 4: re-include the subscription closures in sorted (provider, key)
  // order, mirroring recovery's sorted (owner label, key) replay.
  for (const auto& [id, count] : view.subs) {
    if (count <= 0) continue;
    for (int i = 0; i < count; ++i) {
      std::vector<ItemId> plan;
      std::set<ItemId> in_path, planned;
      OpOutcome outcome = PlanInclude(id, &plan, &in_path, &planned);
      if (outcome != OpOutcome::kOk) {
        return "recovered subscription on " + IdStr(id) +
               " does not plan against the recovered definitions";
      }
      for (ItemId pid : plan) Include(pid);
      ++Find(id.first, id.second)->external_refs;
    }
  }

  // Step 5: value injection + comparison. Recovery injects journaled values
  // only where activation left a null (shells, live on-demand); live
  // triggered/periodic/static keep their activation value.
  for (const auto& [id, entry] : resolved) {
    ModelItem* item = Find(id.first, id.second);
    if (item == nullptr || !item->included) continue;
    auto seen_it = view.values.find(id);
    std::optional<double> seen =
        seen_it == view.values.end() ? std::nullopt : seen_it->second;
    bool injectable = !item->value.has_value();
    if (injectable) {
      bool skip_check = unreliable.count(id) != 0 ||
                        pre.unchecked.count(id) != 0;
      if (torn) {
        // The tail may replay any record since the checkpoint, including
        // ones whose live markers were since erased (provider wipes).
        skip_check = skip_check || floor_.unchecked.count(id) != 0 ||
                     pre_window.unchecked.count(id) != 0;
      }
      if (!skip_check) {
        if (!torn) {
          auto want = pre.values.find(id);
          std::optional<double> expected =
              want == pre.values.end() ? std::nullopt : want->second;
          if (seen != expected) {
            return "recovered value of " + IdStr(id) + ": got " +
                   ValStr(seen) + ", expected " + ValStr(expected);
          }
        } else {
          auto states = values_window(id);
          if (std::find(states.begin(), states.end(), seen) == states.end()) {
            return "recovered value of " + IdStr(id) + ": got " +
                   ValStr(seen) + ", never a window state";
          }
        }
      }
      item->value = seen;  // adopt what recovery actually injected
      item->value_checked = !skip_check;
    } else if (item->value_checked && unreliable.count(id) == 0) {
      if (seen != item->value) {
        return "activation value of recovered " + IdStr(id) + ": got " +
               ValStr(seen) + ", expected " + ValStr(item->value);
      }
    }
  }
  // Dependents of adopted-unchecked items inherit the uncertainty.
  for (bool changed = true; changed;) {
    changed = false;
    for (auto& prov : providers_) {
      for (auto& [key, item] : prov.items) {
        if (!item.included || item.mech != SimMechanism::kDerived) continue;
        if (!item.value_checked) continue;
        const ModelItem* dep = FindItem(item.dep_provider, item.dep_key);
        if (dep != nullptr && !dep->value_checked && !item.shell) {
          // A live derived item evaluated an unchecked dependency at
          // activation; its value is equally unpredictable.
          item.value_checked = false;
          changed = true;
        }
      }
    }
  }

  // Step 6: durability is re-enabled on the recovered manager; the initial
  // checkpoint makes the current state the new durable baseline.
  RebaselineDurable();
  return "";
}

}  // namespace sim
}  // namespace pipes
