#include "testing/sim_shrink.h"

#include <algorithm>
#include <cstddef>
#include <utility>

namespace pipes {
namespace sim {

SimSchedule ShrinkSchedule(const SimSchedule& failing,
                           const SimRunOptions& opts, int max_attempts) {
  SimSchedule best = failing;
  int attempts = 0;
  auto still_fails = [&](const SimSchedule& candidate) {
    ++attempts;
    return !RunSchedule(candidate, opts).ok;
  };

  // Federation schedules hang everything off the exported p0/k0 anchor; a
  // candidate that loses its define would exercise the (uninteresting)
  // never-exported path, so the anchor define is pinned.
  auto protected_op = [&](const SimOp& op) {
    return failing.profile.federation && op.kind == SimOpKind::kDefine &&
           op.provider == 0 && op.key == 0;
  };

  size_t chunk = std::max<size_t>(1, best.ops.size() / 2);
  while (attempts < max_attempts) {
    bool removed_any = false;
    for (size_t start = 0; start < best.ops.size() && attempts < max_attempts;) {
      const size_t len = std::min(chunk, best.ops.size() - start);
      if (len == best.ops.size()) {
        start += len;
        continue;  // never try the empty schedule
      }
      bool pinned = false;
      for (size_t i = start; i < start + len; ++i) {
        if (protected_op(best.ops[i])) pinned = true;
      }
      if (pinned) {
        start += chunk;
        continue;
      }
      SimSchedule candidate = best;
      candidate.ops.erase(
          candidate.ops.begin() + static_cast<std::ptrdiff_t>(start),
          candidate.ops.begin() + static_cast<std::ptrdiff_t>(start + len));
      if (still_fails(candidate)) {
        best = std::move(candidate);
        removed_any = true;
        // Keep `start` in place: the next window shifted into it.
      } else {
        start += chunk;
      }
    }
    if (!removed_any) {
      if (chunk == 1) break;
      chunk = std::max<size_t>(1, chunk / 2);
    } else {
      chunk = std::min(chunk, std::max<size_t>(1, best.ops.size() / 2));
    }
  }
  return best;
}

}  // namespace sim
}  // namespace pipes
