#include "runtime/profiler.h"

#include <cctype>
#include <sstream>

#include "metadata/handler.h"

namespace pipes {

std::string SystemProfiler::DumpProvider(const MetadataProvider& provider,
                                         int indent) {
  std::ostringstream os;
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  os << pad << "provider '" << provider.label() << "'\n";
  const MetadataRegistry& reg = provider.metadata_registry();
  for (const MetadataKey& key : reg.AvailableKeys()) {
    auto desc = reg.Find(key);
    auto handler = reg.GetHandler(key);
    os << pad << "  " << key << " [" << UpdateMechanismToString(desc->mechanism())
       << "]";
    if (handler != nullptr) {
      os << " included refs=" << handler->external_refs() << "+"
         << handler->internal_refs()
         << " value=" << handler->Get().ToString()
         << " accesses=" << handler->access_count()
         << " updates=" << handler->update_count();
    } else {
      os << " available";
    }
    if (!desc->description().empty()) {
      os << "  -- " << desc->description();
    }
    os << "\n";
  }
  for (const std::string& name : provider.ModuleNames()) {
    const MetadataProvider* module = provider.MetadataModule(name);
    if (module != nullptr) {
      os << DumpProvider(*module, indent + 1);
    }
  }
  return os.str();
}

std::string SystemProfiler::DumpGraph(const QueryGraph& graph) {
  std::ostringstream os;
  auto& g = const_cast<QueryGraph&>(graph);
  os << "query graph: " << g.node_count() << " nodes, " << g.query_count()
     << " queries\n";
  for (const auto& node : g.nodes()) {
    os << DumpProvider(*node, 1);
  }
  MetadataManagerStats stats = g.metadata_manager().stats();
  os << "metadata manager: active=" << stats.active_handlers
     << " created=" << stats.handlers_created
     << " removed=" << stats.handlers_removed
     << " evaluations=" << stats.evaluations << " waves=" << stats.waves
     << " wave_refreshes=" << stats.wave_refreshes
     << " events=" << stats.events_fired << "\n";
  return os.str();
}

void SystemProfiler::SummarizeProvider(const MetadataProvider& provider,
                                       InventorySummary* out) {
  out->providers += 1;
  out->available_items += provider.metadata_registry().AvailableKeys().size();
  out->included_items += provider.metadata_registry().included_count();
  for (const std::string& name : provider.ModuleNames()) {
    const MetadataProvider* module = provider.MetadataModule(name);
    if (module != nullptr) SummarizeProvider(*module, out);
  }
}

namespace {

const char* MechanismColor(UpdateMechanism m) {
  switch (m) {
    case UpdateMechanism::kStatic:
      return "gray80";
    case UpdateMechanism::kOnDemand:
      return "lightblue";
    case UpdateMechanism::kPeriodic:
      return "palegreen";
    case UpdateMechanism::kTriggered:
      return "lightsalmon";
  }
  return "white";
}

void EmitProviderCluster(const MetadataProvider& provider, std::ostream& os,
                         int* cluster_id) {
  auto handler_node_id = [](const MetadataHandler& h) {
    std::ostringstream id;
    id << "h" << h.owner().provider_id() << "_" << h.key();
    std::string s = id.str();
    for (char& c : s) {
      if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
    }
    return s;
  };

  auto included = provider.metadata_registry().IncludedKeys();
  if (!included.empty()) {
    os << "  subgraph cluster_" << (*cluster_id)++ << " {\n";
    os << "    label=\"" << provider.label() << "\";\n";
    for (const auto& key : included) {
      auto h = provider.metadata_registry().GetHandler(key);
      if (h == nullptr) continue;
      os << "    " << handler_node_id(*h) << " [label=\"" << key << "\\n("
         << UpdateMechanismToString(h->mechanism())
         << ")\", style=filled, fillcolor=" << MechanismColor(h->mechanism())
         << "];\n";
    }
    os << "  }\n";
    for (const auto& key : included) {
      auto h = provider.metadata_registry().GetHandler(key);
      if (h == nullptr) continue;
      for (const auto& dep : h->dependencies()) {
        os << "  " << handler_node_id(*h) << " -> " << handler_node_id(*dep)
           << ";\n";
      }
    }
  }
  for (const std::string& name : provider.ModuleNames()) {
    const MetadataProvider* module = provider.MetadataModule(name);
    if (module != nullptr) EmitProviderCluster(*module, os, cluster_id);
  }
}

}  // namespace

std::string SystemProfiler::DumpDependencyGraphDot(const QueryGraph& graph) {
  std::ostringstream os;
  os << "digraph metadata_dependencies {\n";
  os << "  rankdir=BT;\n  node [shape=box, fontsize=10];\n";
  int cluster_id = 0;
  auto& g = const_cast<QueryGraph&>(graph);
  for (const auto& node : g.nodes()) {
    EmitProviderCluster(*node, os, &cluster_id);
  }
  os << "}\n";
  return os.str();
}

SystemProfiler::InventorySummary SystemProfiler::Summarize(
    const QueryGraph& graph) {
  InventorySummary out;
  auto& g = const_cast<QueryGraph&>(graph);
  for (const auto& node : g.nodes()) {
    SummarizeProvider(*node, &out);
  }
  return out;
}

}  // namespace pipes
