#include "runtime/plan_migration.h"

#include <cassert>

namespace pipes {

MigratableThreeWayJoin::MigratableThreeWayJoin(
    StreamEngine& engine, std::vector<std::shared_ptr<Node>> inputs,
    Duration window, size_t key_column)
    : engine_(engine),
      inputs_(std::move(inputs)),
      window_(window),
      key_column_(key_column) {
  assert(inputs_.size() == 3);
  auto& g = engine_.graph();
  merge_ = g.AddNode<UnionOperator>("migratable/merge");
  sink_ = g.AddNode<CountingSink>("migratable/sink");
  (void)g.Connect(*merge_, *sink_);
}

std::string MigratableThreeWayJoin::OrderKey(const std::vector<size_t>& order) {
  std::string key;
  for (size_t i : order) key += std::to_string(i);
  return key;
}

Result<MigratableThreeWayJoin::Variant*>
MigratableThreeWayJoin::GetOrBuildVariant(const std::vector<size_t>& order) {
  if (order.size() != 3) {
    return Status::InvalidArgument("order must be a permutation of {0,1,2}");
  }
  bool seen[3] = {false, false, false};
  for (size_t i : order) {
    if (i > 2 || seen[i]) {
      return Status::InvalidArgument("order must be a permutation of {0,1,2}");
    }
    seen[i] = true;
  }

  std::string key = OrderKey(order);
  auto it = variants_.find(key);
  if (it != variants_.end()) return &it->second;

  auto& g = engine_.graph();
  std::string prefix = "migratable/" + key + "/";
  Variant v;
  std::vector<std::shared_ptr<TimeWindowOperator>> windows;
  for (size_t i = 0; i < 3; ++i) {
    size_t src = order[i];
    auto valve = g.AddNode<RandomDropOperator>(
        prefix + "valve" + std::to_string(src), /*drop_probability=*/1.0);
    auto win = g.AddNode<TimeWindowOperator>(
        prefix + "win" + std::to_string(src), window_);
    PIPES_RETURN_NOT_OK(g.Connect(*inputs_[src], *valve));
    PIPES_RETURN_NOT_OK(g.Connect(*valve, *win));
    v.valves.push_back(valve);
    windows.push_back(win);
  }

  // Left-deep tree in the requested order: (s[o0] x s[o1]) x s[o2].
  v.join1 = g.AddNode<SlidingWindowJoin>(prefix + "join1", key_column_,
                                         key_column_);
  PIPES_RETURN_NOT_OK(g.Connect(*windows[0], *v.join1));
  PIPES_RETURN_NOT_OK(g.Connect(*windows[1], *v.join1));
  // join1's output keys: the join preserves the left columns first, so the
  // key column survives at the same index.
  v.join2 = g.AddNode<SlidingWindowJoin>(prefix + "join2", key_column_,
                                         key_column_);
  PIPES_RETURN_NOT_OK(g.Connect(*v.join1, *v.join2));
  PIPES_RETURN_NOT_OK(g.Connect(*windows[2], *v.join2));
  PIPES_RETURN_NOT_OK(g.Connect(*v.join2, *merge_));

  // Cost-model estimates for both joins (valves forward the sources' rate
  // estimates; join1's output estimate feeds join2's input).
  for (size_t i = 0; i < 3; ++i) {
    // The valve's estimated rate tracks the *source's* measured rate, so a
    // closed variant (valves dropping everything) still estimates what it
    // would cost if activated — that is what plan comparison needs.
    Status st = v.valves[i]->metadata_registry().Define(
        MetadataDescriptor::Triggered(keys::kEstOutputRate)
            .DependsOnUpstream(0, keys::kOutputRate)
            .WithEvaluator([](EvalContext& ctx) -> MetadataValue {
              return ctx.DepDouble(0);
            })
            .WithDescription(
                "estimated rate behind the valve: the source's measured "
                "rate (triggered)"));
    if (!st.ok()) return st;
    PIPES_RETURN_NOT_OK(costmodel::RegisterWindowEstimates(*windows[i]));
    // Valves and windows preserve keys, so their distinct-keys items are
    // redefined as pass-throughs from the *source's* measurement — a closed
    // variant (no traffic behind the valve) then still knows the key
    // cardinality its joins would face, which the adaptive estimates need.
    auto passthrough = [] {
      return MetadataDescriptor::Triggered(keys::kDistinctKeys)
          .DependsOnUpstream(0, keys::kDistinctKeys)
          .WithEvaluator([](EvalContext& ctx) { return ctx.Dep(0); })
          .WithDescription(
              "distinct keys, forwarded from upstream (key-preserving "
              "operator)");
    };
    PIPES_RETURN_NOT_OK(
        v.valves[i]->metadata_registry().Redefine(passthrough()));
    PIPES_RETURN_NOT_OK(
        windows[i]->metadata_registry().Redefine(passthrough()));
  }
  PIPES_RETURN_NOT_OK(
      costmodel::RegisterJoinEstimates(*v.join1, 1.0, /*adaptive=*/true));
  // join2's left input is join1: give join1 an element-validity estimate
  // (its results' validity is bounded by the shared window).
  Duration w = window_;
  PIPES_RETURN_NOT_OK(v.join1->metadata_registry().Define(
      MetadataDescriptor::Triggered(keys::kEstElementValidity)
          .WithEvaluator([w](EvalContext&) -> MetadataValue {
            return ToSeconds(w);
          })
          .WithDescription("validity bound of join results (triggered)")));
  PIPES_RETURN_NOT_OK(
      costmodel::RegisterJoinEstimates(*v.join2, 1.0, /*adaptive=*/true));

  auto [ins, inserted] = variants_.emplace(key, std::move(v));
  (void)inserted;
  return &ins->second;
}

void MigratableThreeWayJoin::SetValves(Variant& v, bool open) {
  for (auto& valve : v.valves) {
    valve->set_drop_probability(open ? 0.0 : 1.0);
  }
}

Status MigratableThreeWayJoin::ActivatePlan(const std::vector<size_t>& order) {
  Result<Variant*> variant = GetOrBuildVariant(order);
  if (!variant.ok()) return variant.status();
  if (!active_order_.empty()) {
    if (OrderKey(active_order_) == OrderKey(order)) return Status::OK();
    auto it = variants_.find(OrderKey(active_order_));
    if (it != variants_.end()) SetValves(it->second, /*open=*/false);
    ++migrations_;
  }
  Variant& v = *variant.value();
  SetValves(v, /*open=*/true);
  // Subscribe the measured-CPU items now so their windows accumulate from
  // the moment the plan runs.
  if (!v.cpu1.valid()) {
    auto c1 = engine_.metadata().Subscribe(*v.join1, keys::kCpuUsage);
    auto c2 = engine_.metadata().Subscribe(*v.join2, keys::kCpuUsage);
    if (c1.ok() && c2.ok()) {
      v.cpu1 = std::move(c1.value());
      v.cpu2 = std::move(c2.value());
    }
  }
  active_order_ = order;
  return Status::OK();
}

double MigratableThreeWayJoin::MeasuredJoinCpu() {
  if (active_order_.empty()) return 0.0;
  Variant& v = variants_.at(OrderKey(active_order_));
  if (!v.cpu1.valid()) return 0.0;
  return v.cpu1.GetDouble() + v.cpu2.GetDouble();
}

Result<double> MigratableThreeWayJoin::EstimatedJoinCpu(
    const std::vector<size_t>& order) {
  Result<Variant*> variant = GetOrBuildVariant(order);
  if (!variant.ok()) return variant.status();
  Variant& v = *variant.value();
  if (!v.est1.valid()) {
    auto e1 = engine_.metadata().Subscribe(*v.join1, keys::kEstCpuUsage);
    if (!e1.ok()) return e1.status();
    auto e2 = engine_.metadata().Subscribe(*v.join2, keys::kEstCpuUsage);
    if (!e2.ok()) return e2.status();
    v.est1 = std::move(e1.value());
    v.est2 = std::move(e2.value());
  }
  return v.est1.GetDouble() + v.est2.GetDouble();
}

}  // namespace pipes
