#include "runtime/load_shedder.h"

#include <algorithm>

namespace pipes {

LoadShedder::LoadShedder(MetadataManager& manager, TaskScheduler& scheduler,
                         Options options)
    : manager_(manager), scheduler_(scheduler), options_(options) {}

LoadShedder::~LoadShedder() { Stop(); }

Status LoadShedder::MonitorLoad(OperatorNode& op) {
  Result<MetadataSubscription> sub = manager_.Subscribe(op, keys::kCpuUsage);
  if (!sub.ok()) return sub.status();
  loads_.push_back(std::move(sub.value()));
  return Status::OK();
}

Status LoadShedder::MonitorQos(SinkNode& sink) {
  Result<MetadataSubscription> latency =
      manager_.Subscribe(sink, keys::kProcessingLatency);
  if (!latency.ok()) return latency.status();
  Result<MetadataSubscription> limit =
      manager_.Subscribe(sink, keys::kQosMaxLatency);
  if (!limit.ok()) return limit.status();
  qos_.push_back(
      QosWatch{std::move(latency.value()), std::move(limit.value())});
  return Status::OK();
}

void LoadShedder::AddShedPoint(RandomDropOperator& drop) {
  shed_points_.push_back(&drop);
}

void LoadShedder::Start() {
  Stop();
  task_ = scheduler_.SchedulePeriodic(options_.control_period,
                                      [this] { ControlStep(); });
}

void LoadShedder::Stop() { task_.Cancel(); }

void LoadShedder::ControlStep() {
  double load = 0.0;
  for (const MetadataSubscription& sub : loads_) {
    load += sub.GetDouble();
  }
  last_load_ = load;

  // QoS check: worst latency/limit ratio over the monitored queries.
  double qos_ratio = 0.0;
  for (const QosWatch& watch : qos_) {
    MetadataValue latency = watch.latency.Get();
    double limit = watch.limit.GetDouble();
    if (latency.is_null() || limit <= 0.0) continue;
    qos_ratio = std::max(qos_ratio, latency.AsDouble() / limit);
  }
  last_qos_ratio_ = qos_ratio;

  bool over_cpu = load > options_.cpu_capacity;
  bool qos_violated = qos_ratio > 1.0;
  // Metadata pressure as a third raise signal: brownout raises the drop
  // probability, and any non-normal state suppresses relaxation — shedding
  // must not unwind while the metadata layer is still degraded.
  PressureState pressure = manager_.pressure_state();
  bool pressure_raises = options_.pressure_step > 0.0 &&
                         pressure == PressureState::kBrownout;
  bool pressure_holds = options_.pressure_step > 0.0 &&
                        pressure != PressureState::kNormal;

  // Control-law ordering: relax runs first, only while every signal is
  // healthy, and clamps at zero *before* any raise applies. A raise must
  // start from the clamped value — otherwise a tick where one signal
  // relaxes while another raises would subtract relax_step below zero and
  // silently eat part (or all) of the raise.
  bool any_raise = over_cpu || qos_violated || pressure_raises;
  if (!any_raise && !pressure_holds) {
    // Relax gradually while healthy.
    current_drop_ = std::max(0.0, current_drop_ - options_.relax_step);
  }
  if (any_raise) {
    if (current_drop_ == 0.0) ++activations_;
    if (over_cpu) {
      // Shed the fraction of input needed to come back to capacity.
      double target =
          std::min(options_.max_drop, 1.0 - options_.cpu_capacity / load);
      current_drop_ = std::max(current_drop_, target);
    }
    if (qos_violated) {
      // Latency over the QoS limit: shed more until the backlog drains.
      current_drop_ =
          std::min(options_.max_drop, current_drop_ + options_.qos_step);
    }
    if (pressure_raises) {
      current_drop_ =
          std::min(options_.max_drop, current_drop_ + options_.pressure_step);
    }
  }
  for (RandomDropOperator* p : shed_points_) {
    p->set_drop_probability(current_drop_);
  }
}

}  // namespace pipes
