/// \file monitor.h
/// \brief A monitoring tool: subscribes to metadata items and records their
/// values over time (the consumer of the paper's Figure 3 example and of
/// motivation 4, system profiling).

#pragma once

#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/scheduler.h"
#include "common/stats.h"
#include "common/thread_annotations.h"
#include "metadata/manager.h"
#include "metadata/remote.h"

namespace pipes {

/// \brief Samples a set of subscribed metadata items into time series.
class MetadataMonitor {
 public:
  /// `manager` coordinates subscriptions; `scheduler` drives sampling.
  MetadataMonitor(MetadataManager& manager, TaskScheduler& scheduler);
  ~MetadataMonitor();

  MetadataMonitor(const MetadataMonitor&) = delete;
  MetadataMonitor& operator=(const MetadataMonitor&) = delete;

  /// Subscribes to (provider, key) and records it under `series_name`
  /// (defaults to "<provider label>.<key>").
  Status Watch(MetadataProvider& provider, const MetadataKey& key,
               std::string series_name = "");

  /// Subscribes to (provider, key) and records the handler's *health* as a
  /// numeric series (0 = healthy, 1 = degraded, 2 = quarantined; see
  /// HandlerHealth). Default series name "<provider label>.<key>:health".
  /// Together with WatchStaleness this makes fault containment observable.
  Status WatchHealth(MetadataProvider& provider, const MetadataKey& key,
                     std::string series_name = "");

  /// Subscribes to (provider, key) and records the value's staleness in
  /// seconds (age of last successful update). Default series name
  /// "<provider label>.<key>:staleness".
  Status WatchStaleness(MetadataProvider& provider, const MetadataKey& key,
                        std::string series_name = "");

  /// Records the manager's overload-governor state as a numeric series
  /// (0 = normal, 1 = pressured, 2 = brownout; see PressureState). Needs no
  /// provider or subscription — the manager itself is the source. Feeds the
  /// LoadShedder's pressure input in the runtime wiring.
  Status WatchPressure(std::string series_name = "metadata:pressure");

  /// Records the manager's durability activity as a numeric series: the
  /// total journal records appended so far (a monotone counter; flat while
  /// durability is off). Needs no provider or subscription.
  Status WatchDurability(std::string series_name = "metadata:durability");

  /// Records a federation peer link's circuit-breaker state as a numeric
  /// series (0 = healthy, 1 = degraded, 2 = quarantined). Default series
  /// name "<remote label>:peer_health". The caller keeps `remote` alive for
  /// the monitor's lifetime (Unwatch first otherwise).
  Status WatchPeerHealth(RemoteMetadataProvider& remote,
                         std::string series_name = "");

  /// Records a federation peer link's failure-detector lag (seconds since
  /// the last ack/heartbeat from the peer). Default series name
  /// "<remote label>:peer_lag".
  Status WatchPeerLag(RemoteMetadataProvider& remote,
                      std::string series_name = "");

  /// Stops watching a series and drops its subscription (recorded samples
  /// are kept).
  Status Unwatch(const std::string& series_name);

  /// Starts periodic sampling of all watched items.
  void StartSampling(Duration interval);

  /// Stops periodic sampling.
  void StopSampling();

  /// Takes one sample of every watched item now.
  void SampleOnce();

  /// The recorded series (empty series if unknown).
  const TimeSeries& series(const std::string& name) const;

  /// Names of all series (watched or historical).
  std::vector<std::string> series_names() const;

  /// Latest sampled value of a series (0 if none).
  double LastValue(const std::string& name) const;

  /// Writes all series as CSV (`time_s,series,value` rows, header included)
  /// — the raw material for the paper-style profiling plots
  /// ("metadata profiling is often useful for ... experimental performance
  /// evaluations", §1).
  void ExportCsv(std::ostream& out) const;

 private:
  /// What a watched series samples from its subscription's handler (or,
  /// for kPressure, from the manager directly — no subscription; or, for
  /// kPeer*, from a RemoteMetadataProvider's link state).
  enum class SampleKind {
    kValue,
    kHealth,
    kStaleness,
    kPressure,
    kDurability,
    kPeerHealth,
    kPeerLag,
  };

  struct Watched {
    MetadataSubscription subscription;
    SampleKind kind = SampleKind::kValue;
    /// Source for kPeerHealth / kPeerLag; not owned.
    RemoteMetadataProvider* remote = nullptr;
  };

  Status WatchPeer(RemoteMetadataProvider& remote, std::string series_name,
                   SampleKind kind, const char* default_suffix);

  Status WatchInternal(MetadataProvider& provider, const MetadataKey& key,
                       std::string series_name, SampleKind kind,
                       const char* default_suffix);

  MetadataManager& manager_;
  TaskScheduler& scheduler_;
  /// Held while dropping subscriptions (Unwatch -> UnsubscribeExternal ->
  /// structure lock), so it ranks before the metadata structure lock.
  mutable Mutex mu_{"MetadataMonitor::mu", lockorder::kRankMonitor};
  std::map<std::string, Watched> watched_ PIPES_GUARDED_BY(mu_);
  std::map<std::string, TimeSeries> series_ PIPES_GUARDED_BY(mu_);
  // Written only by Start/Stop from the owning thread (monitor.cc); the
  // handle's shared state is itself thread-safe.
  TaskHandle sampling_task_;  // pipes-analyze: unguarded(Start/Stop serialization)
};

}  // namespace pipes
