#include "runtime/resource_manager.h"

#include <algorithm>

namespace pipes {

AdaptiveResourceManager::AdaptiveResourceManager(MetadataManager& manager,
                                                 TaskScheduler& scheduler,
                                                 Options options)
    : manager_(manager), scheduler_(scheduler), options_(options) {}

AdaptiveResourceManager::~AdaptiveResourceManager() { Stop(); }

Status AdaptiveResourceManager::Manage(
    SlidingWindowJoin& join, std::vector<TimeWindowOperator*> windows) {
  if (windows.empty()) {
    return Status::InvalidArgument("no window operators to manage");
  }
  Result<MetadataSubscription> sub =
      manager_.Subscribe(join, keys::kEstMemoryUsage);
  if (!sub.ok()) return sub.status();
  managed_.push_back(
      Managed{&join, std::move(windows), std::move(sub.value())});
  return Status::OK();
}

void AdaptiveResourceManager::Start() {
  Stop();
  task_ = scheduler_.SchedulePeriodic(options_.control_period,
                                      [this] { ControlStep(); });
}

void AdaptiveResourceManager::Stop() { task_.Cancel(); }

void AdaptiveResourceManager::ControlStep() {
  double total = 0.0;
  for (const Managed& m : managed_) {
    total += m.est_memory.GetDouble();
  }
  last_usage_ = total;
  if (managed_.empty()) return;

  if (total > options_.memory_budget_bytes) {
    // Over budget: shrink every managed window. Each set_window_size fires
    // the resize event; triggered handlers re-estimate costs (§3.3).
    for (const Managed& m : managed_) {
      for (TimeWindowOperator* w : m.windows) {
        Duration next = std::max<Duration>(
            options_.min_window,
            static_cast<Duration>(static_cast<double>(w->window_size()) *
                                  options_.shrink_factor));
        if (next != w->window_size()) {
          w->set_window_size(next);
          ++shrinks_;
        }
      }
    }
  } else if (total <
             options_.memory_budget_bytes * options_.grow_headroom) {
    // Comfortable headroom: restore result quality by growing windows.
    for (const Managed& m : managed_) {
      for (TimeWindowOperator* w : m.windows) {
        Duration next = std::min<Duration>(
            options_.max_window,
            static_cast<Duration>(static_cast<double>(w->window_size()) *
                                  options_.grow_factor));
        if (next != w->window_size()) {
          w->set_window_size(next);
          ++grows_;
        }
      }
    }
  }
}

}  // namespace pipes
