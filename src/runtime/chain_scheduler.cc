#include "runtime/chain_scheduler.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace pipes {

ChainScheduler::ChainScheduler(MetadataManager& manager,
                               TaskScheduler& scheduler)
    : manager_(manager), scheduler_(scheduler) {}

ChainScheduler::~ChainScheduler() { Stop(); }

Status ChainScheduler::AddPipeline(std::vector<OperatorNode*> operators) {
  if (operators.empty()) {
    return Status::InvalidArgument("empty pipeline");
  }
  Pipeline p;
  p.operators = std::move(operators);
  for (OperatorNode* op : p.operators) {
    Result<MetadataSubscription> sel =
        manager_.Subscribe(*op, keys::kAvgSelectivity);
    if (!sel.ok()) return sel.status();
    Result<MetadataSubscription> cpu = manager_.Subscribe(*op, keys::kCpuUsage);
    if (!cpu.ok()) return cpu.status();
    p.selectivity.push_back(std::move(sel.value()));
    p.cpu_cost.push_back(std::move(cpu.value()));
  }
  pipelines_.push_back(std::move(p));
  return Status::OK();
}

std::vector<double> ChainScheduler::ComputeChainPriorities(
    const std::vector<double>& costs,
    const std::vector<double>& selectivities) {
  assert(costs.size() == selectivities.size());
  size_t n = costs.size();
  std::vector<double> priorities(n, 0.0);
  if (n == 0) return priorities;

  // Progress points: P0 = (0, 1); Pi = (sum of costs 1..i, product of
  // selectivities 1..i).
  std::vector<double> x(n + 1, 0.0), y(n + 1, 1.0);
  for (size_t i = 0; i < n; ++i) {
    x[i + 1] = x[i] + std::max(costs[i], 1e-12);
    y[i + 1] = y[i] * std::max(selectivities[i], 0.0);
  }

  // Lower envelope: from point i, the next envelope vertex is the point
  // j > i with the steepest descent (most negative slope). All operators in
  // (i, j] share that steepness as their priority.
  size_t i = 0;
  while (i < n) {
    size_t best = i + 1;
    double best_slope = (y[i + 1] - y[i]) / (x[i + 1] - x[i]);
    for (size_t j = i + 2; j <= n; ++j) {
      double slope = (y[j] - y[i]) / (x[j] - x[i]);
      if (slope < best_slope) {
        best_slope = slope;
        best = j;
      }
    }
    for (size_t k = i; k < best; ++k) {
      priorities[k] = -best_slope;  // steepness: positive, higher = urgent
    }
    i = best;
  }
  return priorities;
}

void ChainScheduler::Recompute() {
  bool changed = false;
  for (Pipeline& p : pipelines_) {
    std::vector<double> costs, sels;
    costs.reserve(p.operators.size());
    sels.reserve(p.operators.size());
    for (size_t i = 0; i < p.operators.size(); ++i) {
      // Per-tuple cost: measured CPU usage divided by input rate would be
      // ideal; the measured work-rate is a usable proxy and stays positive.
      double cpu = p.cpu_cost[i].GetDouble();
      costs.push_back(cpu > 0 ? cpu : 1.0);
      MetadataValue sel = p.selectivity[i].Get();
      sels.push_back(sel.is_null() ? 1.0 : sel.AsDouble());
    }
    std::vector<double> prios = ComputeChainPriorities(costs, sels);
    for (size_t i = 0; i < p.operators.size(); ++i) {
      double& slot = priorities_[p.operators[i]];
      if (std::abs(slot - prios[i]) > 1e-12) {
        slot = prios[i];
        changed = true;
      }
    }
  }
  if (changed) ++changes_;
}

void ChainScheduler::Start(Duration period) {
  Stop();
  task_ = scheduler_.SchedulePeriodic(period, [this] { Recompute(); });
}

void ChainScheduler::Stop() { task_.Cancel(); }

double ChainScheduler::priority(const OperatorNode* op) const {
  auto it = priorities_.find(op);
  return it == priorities_.end() ? 0.0 : it->second;
}

std::vector<const OperatorNode*> ChainScheduler::PriorityOrder() const {
  std::vector<const OperatorNode*> ops;
  ops.reserve(priorities_.size());
  for (const auto& [op, prio] : priorities_) ops.push_back(op);
  std::sort(ops.begin(), ops.end(),
            [this](const OperatorNode* a, const OperatorNode* b) {
              return priority(a) > priority(b);
            });
  return ops;
}

}  // namespace pipes
