#include "runtime/queued_runtime.h"

#include <algorithm>
#include <cassert>

namespace pipes {

Node* FifoStrategy::Pick(const std::vector<Node*>& ready) {
  assert(!ready.empty());
  Node* best = ready.front();
  Timestamp best_ts = best->input_queue()->oldest_timestamp();
  for (Node* n : ready) {
    Timestamp ts = n->input_queue()->oldest_timestamp();
    if (ts < best_ts) {
      best = n;
      best_ts = ts;
    }
  }
  return best;
}

Node* RoundRobinStrategy::Pick(const std::vector<Node*>& ready) {
  assert(!ready.empty());
  cursor_ = (cursor_ + 1) % ready.size();
  return ready[cursor_];
}

Node* ChainStrategy::Pick(const std::vector<Node*>& ready) {
  assert(!ready.empty());
  Node* best = ready.front();
  double best_prio = -1.0;
  for (Node* n : ready) {
    const auto* op = dynamic_cast<const OperatorNode*>(n);
    double prio = op != nullptr ? chain_.priority(op) : 0.0;
    if (prio > best_prio) {
      best = n;
      best_prio = prio;
    }
  }
  return best;
}

QueuedRuntime::QueuedRuntime(QueryGraph& graph, Options options,
                             std::unique_ptr<SchedulingStrategy> strategy)
    : graph_(graph), options_(options), strategy_(std::move(strategy)) {
  assert(strategy_ != nullptr);
}

QueuedRuntime::~QueuedRuntime() { Stop(); }

void QueuedRuntime::Manage(Node& node, double cost_per_element) {
  assert(cost_per_element > 0);
  node.EnableInputQueue();
  managed_.push_back(&node);
  costs_[&node] = cost_per_element;
}

void QueuedRuntime::Start() {
  Stop();
  task_ = graph_.scheduler().SchedulePeriodic(options_.step_interval,
                                              [this] { Step(); });
}

void QueuedRuntime::Stop() { task_.Cancel(); }

size_t QueuedRuntime::Step() {
  size_t processed = 0;
  double budget = options_.budget_per_step;
  std::vector<Node*> ready;
  ready.reserve(managed_.size());
  while (budget > 0) {
    ready.clear();
    for (Node* n : managed_) {
      if (!n->input_queue()->empty()) ready.push_back(n);
    }
    if (ready.empty()) break;
    Node* next = strategy_->Pick(ready);
    if (next->ProcessQueuedOne()) {
      ++processed;
      budget -= costs_[next];  // overdraft of one element is allowed
    }
  }
  processed_ += processed;
  return processed;
}

size_t QueuedRuntime::TotalQueuedElements() const {
  size_t total = 0;
  for (Node* n : managed_) total += n->input_queue()->size();
  return total;
}

size_t QueuedRuntime::TotalQueuedBytes() const {
  size_t total = 0;
  for (Node* n : managed_) total += n->input_queue()->bytes();
  return total;
}

}  // namespace pipes
