/// \file queued_runtime.h
/// \brief Queued (scheduled) execution: a bounded processing budget drains
/// the inter-operator queues according to a pluggable scheduling strategy.
///
/// This is the substrate behind the paper's motivation 1: "The Chain
/// scheduling strategy [5] has to react to significant changes in operator
/// selectivities to minimize the memory usage of inter-operator queues."
/// The ChainStrategy consumes the priorities a metadata-driven
/// ChainScheduler maintains; FIFO and round-robin serve as baselines for
/// the scheduling ablation bench.

#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/scheduler.h"
#include "runtime/chain_scheduler.h"
#include "stream/graph.h"

namespace pipes {

/// \brief Picks the next queued node to run.
class SchedulingStrategy {
 public:
  virtual ~SchedulingStrategy() = default;

  /// Chooses among nodes with non-empty queues (never called with an empty
  /// list). Returns one of `ready`.
  virtual Node* Pick(const std::vector<Node*>& ready) = 0;

  /// Strategy name for reports.
  virtual std::string name() const = 0;
};

/// Drains the globally oldest queued element first (arrival order).
class FifoStrategy final : public SchedulingStrategy {
 public:
  Node* Pick(const std::vector<Node*>& ready) override;
  std::string name() const override { return "fifo"; }
};

/// Rotates over queued nodes.
class RoundRobinStrategy final : public SchedulingStrategy {
 public:
  Node* Pick(const std::vector<Node*>& ready) override;
  std::string name() const override { return "round-robin"; }

 private:
  size_t cursor_ = 0;
};

/// Runs the ready node with the highest Chain priority (metadata-driven).
class ChainStrategy final : public SchedulingStrategy {
 public:
  /// `chain` must outlive the strategy; its priorities are refreshed by its
  /// own periodic recomputation.
  explicit ChainStrategy(ChainScheduler& chain) : chain_(chain) {}
  Node* Pick(const std::vector<Node*>& ready) override;
  std::string name() const override { return "chain"; }

 private:
  ChainScheduler& chain_;
};

/// \brief Budgeted queue-draining executor.
///
/// Every `step_interval` the runtime processes up to `budget_per_step`
/// queued elements, choosing nodes via the strategy. When the offered load
/// exceeds the budget, queues build up — which is exactly when the strategy
/// choice matters.
class QueuedRuntime {
 public:
  struct Options {
    Duration step_interval = Millis(10);
    /// Work units spent per step (the CPU capacity model). Each managed
    /// node declares its per-element cost in Manage().
    double budget_per_step = 100.0;
  };

  QueuedRuntime(QueryGraph& graph, Options options,
                std::unique_ptr<SchedulingStrategy> strategy);
  ~QueuedRuntime();

  QueuedRuntime(const QueuedRuntime&) = delete;
  QueuedRuntime& operator=(const QueuedRuntime&) = delete;

  /// Switches `node` to queued mode and registers it with this runtime.
  /// `cost_per_element` is the work charged against the step budget per
  /// drained element.
  void Manage(Node& node, double cost_per_element = 1.0);

  /// Starts the periodic draining task on the graph's scheduler.
  void Start();
  void Stop();

  /// One budget round (public for deterministic harnesses).
  /// Returns the number of elements processed.
  size_t Step();

  /// Elements currently buffered across all managed queues.
  size_t TotalQueuedElements() const;

  /// Bytes currently buffered across all managed queues.
  size_t TotalQueuedBytes() const;

  /// Elements processed since construction.
  uint64_t total_processed() const { return processed_; }

  SchedulingStrategy& strategy() { return *strategy_; }

 private:
  QueryGraph& graph_;
  Options options_;
  std::unique_ptr<SchedulingStrategy> strategy_;
  std::vector<Node*> managed_;
  std::unordered_map<const Node*, double> costs_;
  TaskHandle task_;
  uint64_t processed_ = 0;
};

}  // namespace pipes
