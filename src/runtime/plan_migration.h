/// \file plan_migration.h
/// \brief Dynamic plan migration for multiway window joins (paper §1,
/// motivation 3; Zhu et al. [25], HybMig [18]).
///
/// "Changes in stream characteristics, such as stream rates or value
/// distributions, may necessitate re-optimizations at runtime, e.g., a
/// left-deep join tree is migrated to its right-deep counterpart."
///
/// A MigratableThreeWayJoin deploys one *variant* per join order: each
/// variant has its own valves (gates), window operators and join pair, and
/// every variant feeds the same sink through a union. Exactly one variant's
/// valves are open at a time. MigrateTo() performs a cold switch: the old
/// variant's valves close, the new variant's open with empty join state that
/// warms up over one window length. Combined with the JoinOrderAdvisor this
/// closes the loop: metadata -> recommendation -> executed migration.

#pragma once

#include <map>
#include <memory>
#include <vector>

#include "costmodel/costmodel.h"
#include "stream/engine.h"
#include "stream/operators/basic.h"
#include "stream/operators/join.h"
#include "stream/operators/window.h"
#include "stream/sink.h"

namespace pipes {

class MigratableThreeWayJoin {
 public:
  /// Builds the shared scaffolding over three logical input streams (any
  /// non-sink nodes with the same schema; integer equi-join on
  /// `key_column`). No variant is deployed yet.
  MigratableThreeWayJoin(StreamEngine& engine,
                         std::vector<std::shared_ptr<Node>> inputs,
                         Duration window, size_t key_column = 0);

  /// Deploys (builds if necessary) the variant for `order` (a permutation
  /// of {0,1,2}) and opens it; any previously active variant closes.
  Status ActivatePlan(const std::vector<size_t>& order);

  /// The currently active order (empty before the first ActivatePlan).
  const std::vector<size_t>& active_order() const { return active_order_; }

  /// The sink all variants feed.
  CountingSink& sink() { return *sink_; }

  /// Measured CPU usage (work units/s) of the active variant's two joins;
  /// subscribes on first use.
  double MeasuredJoinCpu();

  /// Estimated CPU usage of the variant for `order` (deploys its metadata
  /// but keeps its valves closed) — lets an optimizer compare plans without
  /// switching.
  Result<double> EstimatedJoinCpu(const std::vector<size_t>& order);

  /// Number of executed migrations (ActivatePlan calls that switched).
  uint64_t migration_count() const { return migrations_; }

 private:
  struct Variant {
    std::vector<std::shared_ptr<RandomDropOperator>> valves;  // one per source
    std::shared_ptr<SlidingWindowJoin> join1;
    std::shared_ptr<SlidingWindowJoin> join2;
    MetadataSubscription cpu1, cpu2;          // lazily created
    MetadataSubscription est1, est2;          // lazily created
  };

  static std::string OrderKey(const std::vector<size_t>& order);
  Result<Variant*> GetOrBuildVariant(const std::vector<size_t>& order);
  void SetValves(Variant& v, bool open);

  StreamEngine& engine_;
  std::vector<std::shared_ptr<Node>> inputs_;
  Duration window_;
  size_t key_column_;
  std::shared_ptr<UnionOperator> merge_;
  std::shared_ptr<CountingSink> sink_;
  std::map<std::string, Variant> variants_;
  std::vector<size_t> active_order_;
  uint64_t migrations_ = 0;
};

}  // namespace pipes
