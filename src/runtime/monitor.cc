#include "runtime/monitor.h"

#include <ostream>

namespace pipes {

MetadataMonitor::MetadataMonitor(MetadataManager& manager,
                                 TaskScheduler& scheduler)
    : manager_(manager), scheduler_(scheduler) {}

MetadataMonitor::~MetadataMonitor() { StopSampling(); }

Status MetadataMonitor::Watch(MetadataProvider& provider,
                              const MetadataKey& key,
                              std::string series_name) {
  return WatchInternal(provider, key, std::move(series_name),
                       SampleKind::kValue, "");
}

Status MetadataMonitor::WatchHealth(MetadataProvider& provider,
                                    const MetadataKey& key,
                                    std::string series_name) {
  return WatchInternal(provider, key, std::move(series_name),
                       SampleKind::kHealth, ":health");
}

Status MetadataMonitor::WatchStaleness(MetadataProvider& provider,
                                       const MetadataKey& key,
                                       std::string series_name) {
  return WatchInternal(provider, key, std::move(series_name),
                       SampleKind::kStaleness, ":staleness");
}

Status MetadataMonitor::WatchPressure(std::string series_name) {
  if (series_name.empty()) series_name = "metadata:pressure";
  MutexLock lock(mu_);
  if (watched_.count(series_name) > 0) {
    return Status::AlreadyExists("series already watched: " + series_name);
  }
  Watched w;
  w.kind = SampleKind::kPressure;
  series_[series_name];  // ensure the series exists
  watched_.emplace(std::move(series_name), std::move(w));
  return Status::OK();
}

Status MetadataMonitor::WatchDurability(std::string series_name) {
  if (series_name.empty()) series_name = "metadata:durability";
  MutexLock lock(mu_);
  if (watched_.count(series_name) > 0) {
    return Status::AlreadyExists("series already watched: " + series_name);
  }
  Watched w;
  w.kind = SampleKind::kDurability;
  series_[series_name];  // ensure the series exists
  watched_.emplace(std::move(series_name), std::move(w));
  return Status::OK();
}

Status MetadataMonitor::WatchPeerHealth(RemoteMetadataProvider& remote,
                                        std::string series_name) {
  return WatchPeer(remote, std::move(series_name), SampleKind::kPeerHealth,
                   ":peer_health");
}

Status MetadataMonitor::WatchPeerLag(RemoteMetadataProvider& remote,
                                     std::string series_name) {
  return WatchPeer(remote, std::move(series_name), SampleKind::kPeerLag,
                   ":peer_lag");
}

Status MetadataMonitor::WatchPeer(RemoteMetadataProvider& remote,
                                  std::string series_name, SampleKind kind,
                                  const char* default_suffix) {
  if (series_name.empty()) {
    series_name = remote.remote_label() + default_suffix;
  }
  MutexLock lock(mu_);
  if (watched_.count(series_name) > 0) {
    return Status::AlreadyExists("series already watched: " + series_name);
  }
  Watched w;
  w.kind = kind;
  w.remote = &remote;
  series_[series_name];  // ensure the series exists
  watched_.emplace(std::move(series_name), std::move(w));
  return Status::OK();
}

Status MetadataMonitor::WatchInternal(MetadataProvider& provider,
                                      const MetadataKey& key,
                                      std::string series_name, SampleKind kind,
                                      const char* default_suffix) {
  if (series_name.empty()) {
    series_name = provider.label() + "." + key + default_suffix;
  }
  Result<MetadataSubscription> sub = manager_.Subscribe(provider, key);
  if (!sub.ok()) return sub.status();
  MutexLock lock(mu_);
  if (watched_.count(series_name) > 0) {
    return Status::AlreadyExists("series already watched: " + series_name);
  }
  watched_.emplace(series_name, Watched{std::move(sub.value()), kind});
  series_[series_name];  // ensure the series exists
  return Status::OK();
}

Status MetadataMonitor::Unwatch(const std::string& series_name) {
  MutexLock lock(mu_);
  if (watched_.erase(series_name) == 0) {
    return Status::NotFound("series not watched: " + series_name);
  }
  return Status::OK();
}

void MetadataMonitor::StartSampling(Duration interval) {
  StopSampling();
  sampling_task_ =
      scheduler_.SchedulePeriodic(interval, [this] { SampleOnce(); });
}

void MetadataMonitor::StopSampling() { sampling_task_.Cancel(); }

void MetadataMonitor::SampleOnce() {
  Timestamp now = scheduler_.clock().Now();
  MutexLock lock(mu_);
  for (auto& [name, watched] : watched_) {
    switch (watched.kind) {
      case SampleKind::kValue: {
        MetadataValue v = watched.subscription.Get();
        if (!v.is_null()) {
          series_[name].Record(now, v.AsDouble());
        }
        break;
      }
      case SampleKind::kHealth: {
        const auto& h = watched.subscription.handler();
        if (h != nullptr) {
          series_[name].Record(now, static_cast<double>(h->health()));
        }
        break;
      }
      case SampleKind::kStaleness: {
        const auto& h = watched.subscription.handler();
        if (h != nullptr) {
          series_[name].Record(now, ToSeconds(h->staleness(now)));
        }
        break;
      }
      case SampleKind::kPressure: {
        series_[name].Record(
            now, static_cast<double>(manager_.pressure_state()));
        break;
      }
      case SampleKind::kDurability: {
        series_[name].Record(
            now, static_cast<double>(manager_.stats().journal_records));
        break;
      }
      case SampleKind::kPeerHealth: {
        series_[name].Record(
            now, static_cast<double>(watched.remote->health()));
        break;
      }
      case SampleKind::kPeerLag: {
        series_[name].Record(now, ToSeconds(watched.remote->lag(now)));
        break;
      }
    }
  }
}

const TimeSeries& MetadataMonitor::series(const std::string& name) const {
  static const TimeSeries kEmpty;
  MutexLock lock(mu_);
  auto it = series_.find(name);
  return it == series_.end() ? kEmpty : it->second;
}

std::vector<std::string> MetadataMonitor::series_names() const {
  MutexLock lock(mu_);
  std::vector<std::string> names;
  names.reserve(series_.size());
  for (const auto& [name, s] : series_) names.push_back(name);
  return names;
}

void MetadataMonitor::ExportCsv(std::ostream& out) const {
  MutexLock lock(mu_);
  out << "time_s,series,value\n";
  for (const auto& [name, series] : series_) {
    for (const auto& [t, v] : series.points()) {
      out << ToSeconds(t) << "," << name << "," << v << "\n";
    }
  }
}

double MetadataMonitor::LastValue(const std::string& name) const {
  MutexLock lock(mu_);
  auto it = series_.find(name);
  if (it == series_.end() || it->second.empty()) return 0.0;
  return it->second.points().back().second;
}

}  // namespace pipes
