#include "runtime/monitor.h"

#include <ostream>

namespace pipes {

MetadataMonitor::MetadataMonitor(MetadataManager& manager,
                                 TaskScheduler& scheduler)
    : manager_(manager), scheduler_(scheduler) {}

MetadataMonitor::~MetadataMonitor() { StopSampling(); }

Status MetadataMonitor::Watch(MetadataProvider& provider,
                              const MetadataKey& key,
                              std::string series_name) {
  if (series_name.empty()) series_name = provider.label() + "." + key;
  Result<MetadataSubscription> sub = manager_.Subscribe(provider, key);
  if (!sub.ok()) return sub.status();
  std::lock_guard<std::mutex> lock(mu_);
  if (watched_.count(series_name) > 0) {
    return Status::AlreadyExists("series already watched: " + series_name);
  }
  watched_.emplace(series_name, Watched{std::move(sub.value())});
  series_[series_name];  // ensure the series exists
  return Status::OK();
}

Status MetadataMonitor::Unwatch(const std::string& series_name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (watched_.erase(series_name) == 0) {
    return Status::NotFound("series not watched: " + series_name);
  }
  return Status::OK();
}

void MetadataMonitor::StartSampling(Duration interval) {
  StopSampling();
  sampling_task_ =
      scheduler_.SchedulePeriodic(interval, [this] { SampleOnce(); });
}

void MetadataMonitor::StopSampling() { sampling_task_.Cancel(); }

void MetadataMonitor::SampleOnce() {
  Timestamp now = scheduler_.clock().Now();
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, watched] : watched_) {
    MetadataValue v = watched.subscription.Get();
    if (!v.is_null()) {
      series_[name].Record(now, v.AsDouble());
    }
  }
}

const TimeSeries& MetadataMonitor::series(const std::string& name) const {
  static const TimeSeries kEmpty;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = series_.find(name);
  return it == series_.end() ? kEmpty : it->second;
}

std::vector<std::string> MetadataMonitor::series_names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(series_.size());
  for (const auto& [name, s] : series_) names.push_back(name);
  return names;
}

void MetadataMonitor::ExportCsv(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  out << "time_s,series,value\n";
  for (const auto& [name, series] : series_) {
    for (const auto& [t, v] : series.points()) {
      out << ToSeconds(t) << "," << name << "," << v << "\n";
    }
  }
}

double MetadataMonitor::LastValue(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = series_.find(name);
  if (it == series_.end() || it->second.empty()) return 0.0;
  return it->second.points().back().second;
}

}  // namespace pipes
