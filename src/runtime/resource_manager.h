/// \file resource_manager.h
/// \brief Adaptive resource management for sliding-window queries
/// (paper §3.3, based on reference [9]): keeps the estimated memory usage of
/// managed joins within a budget by adjusting window sizes at runtime.
///
/// Every adjustment fires the window-size event; the metadata framework's
/// triggered handlers then re-estimate element validities and join costs
/// along the dependency graph — the end-to-end scenario of §3.3.

#pragma once

#include <vector>

#include "common/scheduler.h"
#include "metadata/manager.h"
#include "stream/operators/join.h"
#include "stream/operators/window.h"

namespace pipes {

/// \brief Window-size controller driven by estimated memory usage metadata.
class AdaptiveResourceManager {
 public:
  struct Options {
    /// Total estimated-memory budget across all managed joins, in bytes.
    double memory_budget_bytes = 1 << 20;
    /// Multiplier applied to window sizes when over budget.
    double shrink_factor = 0.8;
    /// Multiplier applied when comfortably under budget.
    double grow_factor = 1.1;
    /// Grow only while estimated usage is below this fraction of the budget.
    double grow_headroom = 0.7;
    Duration min_window = Millis(10);
    Duration max_window = Seconds(60);
    /// Interval of the control loop.
    Duration control_period = Seconds(1);
  };

  AdaptiveResourceManager(MetadataManager& manager, TaskScheduler& scheduler,
                          Options options);
  ~AdaptiveResourceManager();

  AdaptiveResourceManager(const AdaptiveResourceManager&) = delete;
  AdaptiveResourceManager& operator=(const AdaptiveResourceManager&) = delete;

  /// Manages `join`: subscribes to its estimated memory usage and adjusts
  /// the given window operators (the join's inputs) on budget violations.
  Status Manage(SlidingWindowJoin& join,
                std::vector<TimeWindowOperator*> windows);

  /// Starts the periodic control loop.
  void Start();
  void Stop();

  /// One control decision; public so tests and virtual-time harnesses can
  /// step deterministically.
  void ControlStep();

  /// Total estimated memory usage across managed joins at the last step.
  double last_estimated_usage() const { return last_usage_; }

  /// Number of shrink adjustments performed.
  uint64_t shrink_count() const { return shrinks_; }

  /// Number of grow adjustments performed.
  uint64_t grow_count() const { return grows_; }

 private:
  struct Managed {
    SlidingWindowJoin* join;
    std::vector<TimeWindowOperator*> windows;
    MetadataSubscription est_memory;
  };

  MetadataManager& manager_;
  TaskScheduler& scheduler_;
  Options options_;
  std::vector<Managed> managed_;
  TaskHandle task_;
  double last_usage_ = 0.0;
  uint64_t shrinks_ = 0;
  uint64_t grows_ = 0;
};

}  // namespace pipes
