/// \file optimizer.h
/// \brief Rate-based query optimization (paper §1, motivation 3; Viglas &
/// Naughton [22], plan migration [25, 18]): "changes in stream
/// characteristics, such as stream rates or value distributions, may
/// necessitate re-optimizations at runtime."
///
/// Two pieces:
///  - pure cost/ordering functions over (rate, selectivity) statistics, and
///  - a JoinOrderAdvisor that subscribes to live metadata and recommends a
///    plan migration when an alternative order becomes sufficiently cheaper
///    (hysteresis avoids plan thrashing).

#pragma once

#include <cstddef>
#include <vector>

#include "common/scheduler.h"
#include "metadata/manager.h"
#include "stream/node.h"

namespace pipes {

/// \brief Statistics of one input stream of a multiway join.
struct StreamStats {
  double rate = 0.0;  ///< elements/s
};

/// \brief Rate-based cost of a linear (left-deep) multiway join order.
///
/// \param rates per-stream arrival rates, in join order
/// \param pair_selectivity selectivity applied at each join step
/// \param window window size in seconds (state = rate * window)
/// \return estimated candidate-examinations per second over all join steps
double LinearJoinPlanCost(const std::vector<double>& rates,
                          double pair_selectivity, double window_seconds);

/// \brief Greedy rate-based join ordering: joins the cheapest (lowest-rate)
/// streams first. Returns a permutation of stream indices.
std::vector<size_t> GreedyJoinOrder(const std::vector<double>& rates);

/// \brief Live advisor: watches stream-rate metadata and recommends the
/// cheaper of the plans induced by the current rates.
class JoinOrderAdvisor {
 public:
  struct Options {
    double pair_selectivity = 0.01;
    double window_seconds = 1.0;
    /// A migration is recommended only if the alternative plan is cheaper by
    /// this factor (hysteresis).
    double migration_threshold = 1.2;
    Duration evaluation_period = Seconds(1);
  };

  JoinOrderAdvisor(MetadataManager& manager, TaskScheduler& scheduler,
                   Options options);
  ~JoinOrderAdvisor();

  JoinOrderAdvisor(const JoinOrderAdvisor&) = delete;
  JoinOrderAdvisor& operator=(const JoinOrderAdvisor&) = delete;

  /// Adds an input stream; subscribes to its measured output rate.
  Status AddStream(Node& source);

  /// Re-evaluates now; returns true if the recommended order changed.
  bool Evaluate();

  void Start();
  void Stop();

  /// The currently recommended join order (stream indices in AddStream
  /// order).
  const std::vector<size_t>& recommended_order() const { return current_; }

  /// Cost of the current recommendation at the last evaluation.
  double current_cost() const { return current_cost_; }

  /// Number of recommended plan migrations so far.
  uint64_t migration_count() const { return migrations_; }

 private:
  MetadataManager& manager_;
  TaskScheduler& scheduler_;
  Options options_;
  std::vector<MetadataSubscription> rates_;
  std::vector<size_t> current_;
  double current_cost_ = 0.0;
  TaskHandle task_;
  uint64_t migrations_ = 0;
};

}  // namespace pipes
