/// \file profiler.h
/// \brief System profiling (paper §1, motivation 4): human-readable dumps of
/// the metadata catalog, inclusion state, and handler statistics.

#pragma once

#include <string>

#include "metadata/provider.h"
#include "stream/graph.h"

namespace pipes {

/// \brief Renders metadata inventories of providers and graphs.
class SystemProfiler {
 public:
  /// One line per available item of `provider`: key, mechanism, included?,
  /// current value (for included items), access/update counts, description.
  /// Recurses into modules (indented).
  static std::string DumpProvider(const MetadataProvider& provider,
                                  int indent = 0);

  /// DumpProvider for every node of the graph plus manager-level counters.
  static std::string DumpGraph(const QueryGraph& graph);

  /// Totals: available vs. included items across the graph.
  struct InventorySummary {
    size_t providers = 0;
    size_t available_items = 0;
    size_t included_items = 0;
  };
  static InventorySummary Summarize(const QueryGraph& graph);

  /// Renders the *included* metadata dependency graph (paper §2.4) as
  /// Graphviz DOT: one node per live handler (labelled provider.key and
  /// colored by update mechanism), one edge per dependency, clustered by
  /// provider. Paste into `dot -Tsvg` to visualize a running system.
  static std::string DumpDependencyGraphDot(const QueryGraph& graph);

 private:
  static void SummarizeProvider(const MetadataProvider& provider,
                                InventorySummary* out);
};

}  // namespace pipes
