/// \file chain_scheduler.h
/// \brief Chain operator scheduling (paper §1, motivation 1; Babcock et
/// al. [5]): computes operator priorities from selectivity and per-tuple
/// cost metadata and "has to react to significant changes in operator
/// selectivities".
///
/// Chain models a pipeline as progress points (cumulative processing time,
/// remaining tuple fraction) and assigns each operator the steepness of its
/// lower-envelope segment; steeper segments drain queues faster and get
/// higher priority.

#pragma once

#include <map>
#include <vector>

#include "common/scheduler.h"
#include "metadata/manager.h"
#include "stream/node.h"

namespace pipes {

/// \brief Metadata-driven Chain priority assignment.
class ChainScheduler {
 public:
  ChainScheduler(MetadataManager& manager, TaskScheduler& scheduler);
  ~ChainScheduler();

  ChainScheduler(const ChainScheduler&) = delete;
  ChainScheduler& operator=(const ChainScheduler&) = delete;

  /// Registers a pipeline (operators in stream order). Subscribes to each
  /// operator's average selectivity and measured CPU usage.
  Status AddPipeline(std::vector<OperatorNode*> operators);

  /// Recomputes all priorities from the current metadata values.
  void Recompute();

  /// Starts periodic recomputation.
  void Start(Duration period);
  void Stop();

  /// The Chain priority of an operator (0 if unknown). Higher is more
  /// urgent.
  double priority(const OperatorNode* op) const;

  /// Operators of all pipelines ordered by descending priority.
  std::vector<const OperatorNode*> PriorityOrder() const;

  /// Number of Recompute() calls that changed at least one priority.
  uint64_t change_count() const { return changes_; }

  /// \brief Pure Chain priority computation, unit-testable.
  ///
  /// \param costs per-tuple processing cost of each operator (>0)
  /// \param selectivities output/input tuple ratio of each operator
  /// \return per-operator priority: the steepness (drop per unit cost) of
  ///   the operator's lower-envelope segment.
  static std::vector<double> ComputeChainPriorities(
      const std::vector<double>& costs,
      const std::vector<double>& selectivities);

 private:
  struct Pipeline {
    std::vector<OperatorNode*> operators;
    std::vector<MetadataSubscription> selectivity;
    std::vector<MetadataSubscription> cpu_cost;
  };

  MetadataManager& manager_;
  TaskScheduler& scheduler_;
  std::vector<Pipeline> pipelines_;
  std::map<const OperatorNode*, double> priorities_;
  TaskHandle task_;
  uint64_t changes_ = 0;
};

}  // namespace pipes
