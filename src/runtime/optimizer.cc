#include "runtime/optimizer.h"

#include <algorithm>
#include <numeric>

namespace pipes {

double LinearJoinPlanCost(const std::vector<double>& rates,
                          double pair_selectivity, double window_seconds) {
  if (rates.size() < 2) return 0.0;
  // Left-deep pipeline: intermediate i joins the running result with stream
  // i+1. The running result's rate grows with each applied selectivity; each
  // step examines (r_left * n_right + r_right * n_left) candidates/s with
  // n = rate * window.
  double cost = 0.0;
  double left_rate = rates[0];
  for (size_t i = 1; i < rates.size(); ++i) {
    double right_rate = rates[i];
    double n_left = left_rate * window_seconds;
    double n_right = right_rate * window_seconds;
    cost += left_rate * n_right + right_rate * n_left;
    // Output rate of this join feeds the next step.
    left_rate = pair_selectivity * (left_rate * n_right + right_rate * n_left);
  }
  return cost;
}

std::vector<size_t> GreedyJoinOrder(const std::vector<double>& rates) {
  std::vector<size_t> order(rates.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return rates[a] < rates[b]; });
  return order;
}

JoinOrderAdvisor::JoinOrderAdvisor(MetadataManager& manager,
                                   TaskScheduler& scheduler, Options options)
    : manager_(manager), scheduler_(scheduler), options_(options) {}

JoinOrderAdvisor::~JoinOrderAdvisor() { Stop(); }

Status JoinOrderAdvisor::AddStream(Node& source) {
  Result<MetadataSubscription> sub =
      manager_.Subscribe(source, keys::kOutputRate);
  if (!sub.ok()) return sub.status();
  rates_.push_back(std::move(sub.value()));
  current_.push_back(current_.size());
  return Status::OK();
}

bool JoinOrderAdvisor::Evaluate() {
  if (rates_.size() < 2) return false;
  std::vector<double> rates;
  rates.reserve(rates_.size());
  for (const MetadataSubscription& sub : rates_) {
    rates.push_back(sub.GetDouble());
  }

  auto order_cost = [&](const std::vector<size_t>& order) {
    std::vector<double> ordered;
    ordered.reserve(order.size());
    for (size_t idx : order) ordered.push_back(rates[idx]);
    return LinearJoinPlanCost(ordered, options_.pair_selectivity,
                              options_.window_seconds);
  };

  current_cost_ = order_cost(current_);
  std::vector<size_t> candidate = GreedyJoinOrder(rates);
  double candidate_cost = order_cost(candidate);

  if (candidate != current_ &&
      candidate_cost * options_.migration_threshold < current_cost_) {
    current_ = candidate;
    current_cost_ = candidate_cost;
    ++migrations_;
    return true;
  }
  return false;
}

void JoinOrderAdvisor::Start() {
  Stop();
  task_ = scheduler_.SchedulePeriodic(options_.evaluation_period,
                                      [this] { Evaluate(); });
}

void JoinOrderAdvisor::Stop() { task_.Cancel(); }

}  // namespace pipes
