/// \file load_shedder.h
/// \brief Load shedding (paper §1, motivation 2; Tatbul et al. [21]):
/// "metadata on resource allocation is necessary to apply load shedding
/// techniques with the aim to keep overall resource usage in bounds."
///
/// The shedder subscribes to the measured CPU usage of monitored operators
/// and, when their sum exceeds the configured capacity, raises the drop
/// probability of the registered shed points proportionally to the excess.

#pragma once

#include <vector>

#include "common/scheduler.h"
#include "metadata/manager.h"
#include "stream/operators/basic.h"

namespace pipes {

class LoadShedder {
 public:
  struct Options {
    /// Work units per second the system may spend.
    double cpu_capacity = 1e6;
    /// Control-loop interval.
    Duration control_period = Seconds(1);
    /// Per-step decay of the drop probability while under capacity.
    double relax_step = 0.05;
    /// Upper bound of the drop probability.
    double max_drop = 0.95;
    /// Per-step increase of the drop probability during a QoS violation.
    double qos_step = 0.1;
    /// Per-step increase while the metadata manager reports kBrownout; any
    /// non-normal pressure state also suppresses relaxation. 0 disables the
    /// pressure input entirely (default — CPU and QoS behave as before).
    double pressure_step = 0.0;
  };

  LoadShedder(MetadataManager& manager, TaskScheduler& scheduler,
              Options options);
  ~LoadShedder();

  LoadShedder(const LoadShedder&) = delete;
  LoadShedder& operator=(const LoadShedder&) = delete;

  /// Adds an operator whose measured CPU usage counts against the capacity.
  Status MonitorLoad(OperatorNode& op);

  /// Adds a sink whose QoS must hold: when its measured processing latency
  /// exceeds its QoS maximum latency (both metadata items), shedding
  /// increases until the violation clears. This is the paper's query-level
  /// QoS specification driving a runtime adaptation.
  Status MonitorQos(SinkNode& sink);

  /// Adds a drop operator the shedder may actuate.
  void AddShedPoint(RandomDropOperator& drop);

  void Start();
  void Stop();

  /// One control decision (public for deterministic harnesses).
  void ControlStep();

  /// Total measured CPU usage at the last step.
  double last_load() const { return last_load_; }

  /// Worst latency/limit ratio across QoS-monitored sinks at the last step
  /// (<= 1 means all QoS specifications hold).
  double last_qos_ratio() const { return last_qos_ratio_; }

  /// Drop probability applied at the last step.
  double current_drop() const { return current_drop_; }

  uint64_t activation_count() const { return activations_; }

 private:
  struct QosWatch {
    MetadataSubscription latency;
    MetadataSubscription limit;
  };

  MetadataManager& manager_;
  TaskScheduler& scheduler_;
  Options options_;
  std::vector<MetadataSubscription> loads_;
  std::vector<QosWatch> qos_;
  std::vector<RandomDropOperator*> shed_points_;
  TaskHandle task_;
  double last_load_ = 0.0;
  double last_qos_ratio_ = 0.0;
  double current_drop_ = 0.0;
  uint64_t activations_ = 0;
};

}  // namespace pipes
