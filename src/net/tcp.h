/// \file tcp.h
/// \brief Real TCP socket transport for cross-process federation.
///
/// The integration half of the transport story. Frames cross the socket in
/// the journal's CRC-framed record format — `[payload_len u32][crc32 u32]
/// [EncodeFrame bytes]` — so a frame damaged in transit is detected the same
/// way a bit-rotted journal record is. Each `TcpEndpoint` owns its file
/// descriptor plus one reader thread that reassembles frames and hands them
/// to the receiver callback (invoked with no endpoint lock held). Writes are
/// serialized under the endpoint lock; a peer hangup flips `connected()` to
/// false and subsequent sends fail, which the federation layer's heartbeat
/// machinery translates into degraded/quarantined peer health.
///
/// IPv4 localhost-oriented (the integration tests bind 127.0.0.1 on an
/// ephemeral port); no name resolution is performed.

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "net/transport.h"

namespace pipes {
namespace net {

/// \brief An Endpoint over a connected TCP socket.
class TcpEndpoint final : public Endpoint {
 public:
  /// Closes the socket and joins the reader thread.
  ~TcpEndpoint() override;

  TcpEndpoint(const TcpEndpoint&) = delete;
  TcpEndpoint& operator=(const TcpEndpoint&) = delete;

  Status Send(const Frame& frame) override;
  void SetReceiver(Receiver receiver) override;
  bool connected() const override;

  /// Shuts the socket down (both directions), which unblocks the reader
  /// thread. Safe to call from the receiver callback. Idempotent.
  void Close() override;

 private:
  friend class TcpListener;
  friend Result<std::unique_ptr<TcpEndpoint>> TcpConnect(
      const std::string& host, uint16_t port);

  explicit TcpEndpoint(int fd);

  /// Reader thread body: reassemble frames until EOF/error.
  void ReaderLoop();

  const int fd_;
  std::atomic<bool> connected_{true};
  /// Near-leaf (kRankNetEndpoint): serializes writes and guards the
  /// receiver; never held while the receiver runs or while blocking in
  /// read().
  mutable Mutex mu_{"TcpEndpoint::mu", lockorder::kRankNetEndpoint};
  Receiver receiver_ PIPES_GUARDED_BY(mu_);
  std::thread reader_;  // pipes-analyze: unguarded(started in the ctor, joined only in the dtor)
};

/// \brief A listening IPv4 TCP socket producing TcpEndpoints.
class TcpListener {
 public:
  /// Binds 127.0.0.1:`port` (0 = ephemeral) and listens. The bound port is
  /// available via port().
  static Result<std::unique_ptr<TcpListener>> Listen(uint16_t port);

  ~TcpListener();
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  uint16_t port() const { return port_; }

  /// Blocks until one connection arrives and wraps it. Fails after Close().
  Result<std::unique_ptr<TcpEndpoint>> Accept();

  /// Closes the listening socket, failing any blocked Accept. Idempotent.
  void Close();

 private:
  TcpListener(int fd, uint16_t port) : fd_(fd), port_(port) {}

  std::atomic<int> fd_;
  const uint16_t port_;
};

/// Connects to `host`:`port` (dotted-quad IPv4, e.g. "127.0.0.1").
Result<std::unique_ptr<TcpEndpoint>> TcpConnect(const std::string& host,
                                                uint16_t port);

}  // namespace net
}  // namespace pipes
