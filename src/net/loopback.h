/// \file loopback.h
/// \brief In-process loopback transport: two endpoints joined by a simulated
/// link whose deliveries are scheduler tasks.
///
/// The deterministic half of the transport story. A `LoopbackLink` owns an
/// endpoint pair (`a()` / `b()`): a frame Sent on one side is delivered to
/// the other side's receiver by a task scheduled `latency` microseconds
/// later, so two federated MetadataManagers sharing one
/// `VirtualTimeScheduler` exchange messages in a fully replayable order.
/// When a `FaultInjector` is attached, every send first consults
/// `DecideMessage` on the per-direction scope: drops vanish silently (the
/// sender cannot tell — exactly like a lossy wire), delays and reorders add
/// extra latency (a reordered frame is simply scheduled late enough for
/// later traffic to overtake it), duplicates schedule the delivery twice,
/// and a partitioned link (`PartitionLink`) eats everything until healed.
///
/// Lifetime: delivery tasks share ownership of the destination endpoint's
/// state, so in-flight frames outlive the link safely (they land in a closed
/// endpoint and are dropped).

#pragma once

#include <memory>
#include <string>

#include "common/fault_injection.h"
#include "common/mutex.h"
#include "common/scheduler.h"
#include "common/thread_annotations.h"
#include "common/types.h"
#include "net/transport.h"

namespace pipes {
namespace net {

class LoopbackLink;

/// \brief One side of a LoopbackLink. Created and owned by the link.
class LoopbackEndpoint final : public Endpoint {
 public:
  Status Send(const Frame& frame) override;
  void SetReceiver(Receiver receiver) override;
  bool connected() const override;
  void Close() override;

 private:
  friend class LoopbackLink;

  /// Receiver/closed state, shared with in-flight delivery tasks.
  struct State {
    /// Near-leaf (kRankNetEndpoint): held only to read/write the receiver
    /// and closed flag; the receiver itself is always invoked unlocked.
    Mutex mu{"LoopbackEndpoint::mu", lockorder::kRankNetEndpoint};
    Receiver receiver PIPES_GUARDED_BY(mu);
    bool closed PIPES_GUARDED_BY(mu) = false;
  };

  LoopbackEndpoint() : state_(std::make_shared<State>()) {}

  TaskScheduler* scheduler_ = nullptr;
  FaultInjector* injector_ = nullptr;    // may be null
  std::string scope_;                    // fault scope of the outgoing side
  Duration latency_ = 0;
  std::shared_ptr<State> state_;         // this endpoint's receive side
  std::shared_ptr<State> peer_state_;    // the other endpoint's receive side
};

/// \brief An endpoint pair joined by a simulated, optionally faulty link.
class LoopbackLink {
 public:
  struct Options {
    /// One-way delivery latency (virtual when the scheduler is virtual).
    Duration latency = 0;
    /// Message-fault source; null = perfect link.
    FaultInjector* injector = nullptr;
    /// Per-direction fault scopes (arm/partition these on the injector).
    std::string scope_a_to_b = "loopback.a2b";
    std::string scope_b_to_a = "loopback.b2a";
  };

  explicit LoopbackLink(TaskScheduler& scheduler);
  LoopbackLink(TaskScheduler& scheduler, Options options);

  LoopbackLink(const LoopbackLink&) = delete;
  LoopbackLink& operator=(const LoopbackLink&) = delete;

  Endpoint& a() { return a_; }
  Endpoint& b() { return b_; }

 private:
  LoopbackEndpoint a_;
  LoopbackEndpoint b_;
};

}  // namespace net
}  // namespace pipes
