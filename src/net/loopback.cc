#include "net/loopback.h"

#include <utility>

namespace pipes {
namespace net {

Status LoopbackEndpoint::Send(const Frame& frame) {
  {
    MutexLock lock(state_->mu);
    if (state_->closed) {
      return Status::FailedPrecondition("loopback endpoint closed");
    }
  }
  Duration extra = 0;
  int copies = 1;
  if (injector_ != nullptr) {
    switch (injector_->DecideMessage(scope_, &extra)) {
      case MessageFault::kDrop:
        // The wire ate it; a lossy link is indistinguishable from success
        // at the sender, which is exactly what retry logic must cope with.
        return Status::OK();
      case MessageFault::kDuplicate:
        copies = 2;
        break;
      case MessageFault::kDeliver:
      case MessageFault::kDelay:
      case MessageFault::kReorder:
        break;
    }
  }
  Timestamp deliver_at = scheduler_->clock().Now() + latency_ + extra;
  for (int i = 0; i < copies; ++i) {
    std::shared_ptr<State> dest = peer_state_;
    scheduler_->ScheduleAt(deliver_at, [dest, frame]() {
      Endpoint::Receiver receiver;
      {
        MutexLock lock(dest->mu);
        if (dest->closed) return;
        receiver = dest->receiver;
      }
      if (receiver) receiver(frame);
    });
  }
  return Status::OK();
}

void LoopbackEndpoint::SetReceiver(Receiver receiver) {
  MutexLock lock(state_->mu);
  state_->receiver = std::move(receiver);
}

bool LoopbackEndpoint::connected() const {
  MutexLock lock(state_->mu);
  return !state_->closed;
}

void LoopbackEndpoint::Close() {
  MutexLock lock(state_->mu);
  state_->closed = true;
  state_->receiver = nullptr;
}

LoopbackLink::LoopbackLink(TaskScheduler& scheduler)
    : LoopbackLink(scheduler, Options()) {}

LoopbackLink::LoopbackLink(TaskScheduler& scheduler, Options options) {
  a_.scheduler_ = &scheduler;
  a_.injector_ = options.injector;
  a_.scope_ = options.scope_a_to_b;
  a_.latency_ = options.latency;
  a_.peer_state_ = b_.state_;

  b_.scheduler_ = &scheduler;
  b_.injector_ = options.injector;
  b_.scope_ = options.scope_b_to_a;
  b_.latency_ = options.latency;
  b_.peer_state_ = a_.state_;
}

}  // namespace net
}  // namespace pipes
