/// \file transport.h
/// \brief Transport abstraction for inter-process metadata federation.
///
/// The paper's dependency graph is explicitly inter-node (§3.2.3): metadata
/// items on one node subscribe to items owned by another, and update waves
/// cross the link as sequence-numbered push messages. This header defines
/// the transport-neutral half of that story: a `Frame` (the unit of
/// exchange: typed, sequence-numbered, topic-addressed), a binary codec that
/// reuses the journal's CRC-framed record format on the wire, and the
/// `Endpoint` interface the federation layer talks to. Two implementations
/// exist: an in-process loopback pair driven by a `TaskScheduler` (so chaos
/// tests replay deterministically under virtual time, see loopback.h) and a
/// real TCP socket transport for cross-process integration (see tcp.h).
///
/// Layering: `net` sits between `common` and `metadata` (common ← net ←
/// metadata). Nothing here knows about metadata values or registries — the
/// federation protocol in metadata/remote.h assigns meaning to frame types
/// and payload bytes.

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "common/status.h"

namespace pipes {
namespace net {

/// \brief One unit of exchange between two endpoints.
///
/// `type` is protocol-defined (the federation layer's request/reply/push
/// discriminator), `seq` is a protocol-defined sequence number (the basis of
/// cross-link duplicate suppression), `topic` addresses a subscription
/// ("provider/key" by convention), and `payload` carries protocol-encoded
/// bytes (RecordEncoder format).
struct Frame {
  uint32_t type = 0;
  uint64_t seq = 0;
  std::string topic;
  std::string payload;
};

/// Encodes a frame into record bytes: [type u32][seq u64][topic str][payload
/// str]. The result is one record payload — transports that need integrity
/// framing wrap it with AppendFrame (journal.h) on the wire.
std::string EncodeFrame(const Frame& frame);

/// Decodes record bytes produced by EncodeFrame. Returns false (leaving
/// `*out` unspecified) on truncated or malformed input.
bool DecodeFrame(std::string_view record, Frame* out);

/// \brief A bidirectional, message-oriented channel to one peer.
///
/// Implementations deliver whole frames, in order on a healthy link (faulty
/// links may drop/delay/duplicate/reorder — the federation layer's sequence
/// numbers absorb that). Send() never blocks on the peer: it either queues
/// the frame for delivery or reports the link down.
///
/// Thread safety: Send/SetReceiver/Close are safe to call concurrently. The
/// receiver callback is invoked with no endpoint lock held, so it may call
/// back into Send() freely; it must not destroy the endpoint.
class Endpoint {
 public:
  using Receiver = std::function<void(const Frame&)>;

  virtual ~Endpoint() = default;

  /// Queues one frame for delivery to the peer. FailedPrecondition when the
  /// endpoint is closed or the link is down. A successful Send is *not* a
  /// delivery guarantee — the link may still drop the frame.
  virtual Status Send(const Frame& frame) = 0;

  /// Installs the callback invoked for each frame arriving from the peer.
  /// Replaces any previous receiver; pass nullptr to stop receiving (frames
  /// arriving with no receiver are dropped).
  virtual void SetReceiver(Receiver receiver) = 0;

  /// True while the endpoint can accept Send() calls.
  virtual bool connected() const = 0;

  /// Shuts the endpoint down; subsequent Send() calls fail. Idempotent.
  virtual void Close() = 0;
};

}  // namespace net
}  // namespace pipes
