#include "net/transport.h"

#include "common/journal.h"

namespace pipes {
namespace net {

std::string EncodeFrame(const Frame& frame) {
  RecordEncoder enc;
  enc.PutU32(frame.type);
  enc.PutU64(frame.seq);
  enc.PutString(frame.topic);
  enc.PutString(frame.payload);
  return enc.Take();
}

bool DecodeFrame(std::string_view record, Frame* out) {
  RecordDecoder dec(record);
  Frame f;
  if (!dec.GetU32(&f.type)) return false;
  if (!dec.GetU64(&f.seq)) return false;
  if (!dec.GetString(&f.topic)) return false;
  if (!dec.GetString(&f.payload)) return false;
  *out = std::move(f);
  return true;
}

}  // namespace net
}  // namespace pipes
