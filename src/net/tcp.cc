#include "net/tcp.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>
#include <utility>

#include "common/journal.h"

namespace pipes {
namespace net {

namespace {

/// Reads exactly `size` bytes; false on EOF or error.
bool ReadFully(int fd, void* buf, size_t size) {
  char* p = static_cast<char*>(buf);
  while (size > 0) {
    ssize_t n = ::read(fd, p, size);
    if (n == 0) return false;  // orderly EOF
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    size -= static_cast<size_t>(n);
  }
  return true;
}

/// Writes all of `buf`; false on error (including EPIPE on peer hangup).
bool WriteFully(int fd, const void* buf, size_t size) {
  const char* p = static_cast<const char*>(buf);
  while (size > 0) {
    ssize_t n = ::write(fd, p, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    size -= static_cast<size_t>(n);
  }
  return true;
}

uint32_t LoadU32Le(const unsigned char* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

}  // namespace

// ---------------------------------------------------------------------------
// TcpEndpoint
// ---------------------------------------------------------------------------

TcpEndpoint::TcpEndpoint(int fd) : fd_(fd) {
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  // SIGPIPE would kill the process on a send to a hung-up peer; surface it
  // as a write error instead.
  ::signal(SIGPIPE, SIG_IGN);
  reader_ = std::thread([this] { ReaderLoop(); });
}

TcpEndpoint::~TcpEndpoint() {
  Close();
  if (reader_.joinable()) reader_.join();
}

Status TcpEndpoint::Send(const Frame& frame) {
  std::string wire;
  AppendFrame(&wire, EncodeFrame(frame));
  MutexLock lock(mu_);
  if (!connected_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("tcp endpoint disconnected");
  }
  if (!WriteFully(fd_, wire.data(), wire.size())) {
    connected_.store(false, std::memory_order_release);
    return Status::Internal("tcp write failed: " +
                            std::string(std::strerror(errno)));
  }
  return Status::OK();
}

void TcpEndpoint::SetReceiver(Receiver receiver) {
  MutexLock lock(mu_);
  receiver_ = std::move(receiver);
}

bool TcpEndpoint::connected() const {
  return connected_.load(std::memory_order_acquire);
}

void TcpEndpoint::Close() {
  if (connected_.exchange(false, std::memory_order_acq_rel)) {
    ::shutdown(fd_, SHUT_RDWR);
  }
}

void TcpEndpoint::ReaderLoop() {
  for (;;) {
    unsigned char header[kFrameHeaderSize];
    if (!ReadFully(fd_, header, sizeof(header))) break;
    uint32_t payload_len = LoadU32Le(header);
    uint32_t expected_crc = LoadU32Le(header + 4);
    if (payload_len > kMaxRecordPayload) break;  // framing desync, give up
    std::string payload(payload_len, '\0');
    if (!ReadFully(fd_, payload.data(), payload.size())) break;
    if (Crc32(payload.data(), payload.size()) != expected_crc) {
      // Damaged in transit; the federation layer's retry/heartbeat machinery
      // recovers the content, so skipping is safe and framing stays aligned.
      continue;
    }
    Frame frame;
    if (!DecodeFrame(payload, &frame)) continue;
    Receiver receiver;
    {
      MutexLock lock(mu_);
      receiver = receiver_;
    }
    if (receiver) receiver(frame);
  }
  connected_.store(false, std::memory_order_release);
}

// ---------------------------------------------------------------------------
// TcpListener / TcpConnect
// ---------------------------------------------------------------------------

Result<std::unique_ptr<TcpListener>> TcpListener::Listen(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::Internal("socket: " + std::string(std::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status s = Status::Internal("bind: " + std::string(std::strerror(errno)));
    ::close(fd);
    return s;
  }
  if (::listen(fd, 8) != 0) {
    Status s =
        Status::Internal("listen: " + std::string(std::strerror(errno)));
    ::close(fd);
    return s;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    Status s =
        Status::Internal("getsockname: " + std::string(std::strerror(errno)));
    ::close(fd);
    return s;
  }
  return std::unique_ptr<TcpListener>(
      new TcpListener(fd, ntohs(addr.sin_port)));
}

TcpListener::~TcpListener() { Close(); }

Result<std::unique_ptr<TcpEndpoint>> TcpListener::Accept() {
  int fd = fd_.load(std::memory_order_acquire);
  if (fd < 0) return Status::FailedPrecondition("listener closed");
  for (;;) {
    int conn = ::accept(fd, nullptr, nullptr);
    if (conn >= 0) {
      return std::unique_ptr<TcpEndpoint>(new TcpEndpoint(conn));
    }
    if (errno == EINTR) continue;
    return Status::Internal("accept: " + std::string(std::strerror(errno)));
  }
}

void TcpListener::Close() {
  int fd = fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
}

Result<std::unique_ptr<TcpEndpoint>> TcpConnect(const std::string& host,
                                                uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not a dotted-quad IPv4 address: " + host);
  }
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::Internal("socket: " + std::string(std::strerror(errno)));
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status s =
        Status::Internal("connect: " + std::string(std::strerror(errno)));
    ::close(fd);
    return s;
  }
  return std::unique_ptr<TcpEndpoint>(new TcpEndpoint(fd));
}

}  // namespace net
}  // namespace pipes
