/// \file source.h
/// \brief Synthetic stream sources: configurable arrival processes and value
/// generators, driven by the graph's scheduler.
///
/// These stand in for the paper's raw data streams. Constant-rate arrivals
/// reproduce Figure 4's scenario; bursty on/off arrivals reproduce Figure 5.

#pragma once

#include <atomic>
#include <functional>
#include <memory>

#include "common/rng.h"
#include "common/scheduler.h"
#include "stream/node.h"

namespace pipes {

/// \brief Generates inter-arrival times for a synthetic source.
class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;

  /// The time until the next element.
  virtual Duration NextInterval(Rng& rng) = 0;
};

/// Elements arrive exactly every `interval` microseconds.
class ConstantArrivals final : public ArrivalProcess {
 public:
  explicit ConstantArrivals(Duration interval) : interval_(interval) {}
  Duration NextInterval(Rng&) override { return interval_; }

 private:
  Duration interval_;
};

/// Poisson process with the given mean rate (exponential inter-arrivals).
class PoissonArrivals final : public ArrivalProcess {
 public:
  explicit PoissonArrivals(double rate_per_second)
      : rate_per_second_(rate_per_second) {}
  Duration NextInterval(Rng& rng) override {
    return static_cast<Duration>(rng.Exponential(rate_per_second_) *
                                 static_cast<double>(kMicrosPerSecond));
  }

 private:
  double rate_per_second_;
};

/// \brief On/off bursts: during a burst, elements arrive every
/// `on_interval`; bursts of `burst_length` elements are separated by silent
/// gaps of `off_duration` (the bursty arrival of the paper's Figure 5).
class BurstyArrivals final : public ArrivalProcess {
 public:
  BurstyArrivals(uint64_t burst_length, Duration on_interval,
                 Duration off_duration)
      : burst_length_(burst_length),
        on_interval_(on_interval),
        off_duration_(off_duration) {}

  Duration NextInterval(Rng&) override {
    if (emitted_in_burst_ < burst_length_) {
      ++emitted_in_burst_;
      return on_interval_;
    }
    emitted_in_burst_ = 1;
    return off_duration_;
  }

 private:
  uint64_t burst_length_;
  Duration on_interval_;
  Duration off_duration_;
  uint64_t emitted_in_burst_ = 0;
};

/// Produces the payload of each generated element.
using TupleGenerator = std::function<Tuple(Rng&, Timestamp)>;

/// A generator for (id:int64, value:double) tuples with uniform values and a
/// key domain of `key_cardinality` — the default test workload.
TupleGenerator MakeUniformPairGenerator(int64_t key_cardinality,
                                        double value_lo = 0.0,
                                        double value_hi = 1.0);

/// A generator drawing keys from a Zipf distribution (skewed workloads).
TupleGenerator MakeZipfPairGenerator(std::shared_ptr<ZipfDistribution> zipf,
                                     double value_lo = 0.0,
                                     double value_hi = 1.0);

/// The schema produced by the pair generators: (id:int64, value:double).
const Schema& PairSchema();

/// \brief A scheduler-driven source emitting synthetic elements.
///
/// Start() schedules the first arrival on the graph's scheduler; each
/// arrival emits one element timestamped with the current (virtual or real)
/// time and schedules the next. Deterministic under VirtualTimeScheduler.
class SyntheticSource final : public SourceNode {
 public:
  SyntheticSource(std::string label, Schema schema,
                  std::unique_ptr<ArrivalProcess> arrivals,
                  TupleGenerator generator, uint64_t seed = 42);
  ~SyntheticSource() override;

  const Schema& output_schema() const override { return schema_; }

  /// Begins emitting. Requires the node to be registered with a graph.
  void Start();

  /// Stops emitting (idempotent).
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

 private:
  void ScheduleNext();

  // schema_/generator_ are fixed at construction; arrivals_ and rng_ are
  // touched only by the single in-flight arrival task (ScheduleNext chains
  // one task at a time, and Stop cancels before teardown).
  Schema schema_;     // pipes-analyze: unguarded(fixed at construction)
  std::unique_ptr<ArrivalProcess> arrivals_;  // pipes-analyze: unguarded(single in-flight arrival task)
  TupleGenerator generator_;  // pipes-analyze: unguarded(fixed at construction)
  Rng rng_;  // pipes-analyze: unguarded(single in-flight arrival task)
  /// Guards task_: reassigned by the arrival callback on a scheduler worker
  /// while Stop() cancels from the owner's thread.
  Mutex task_mu_{"SyntheticSource::task_mu", lockorder::kRankLeaf};
  TaskHandle task_ PIPES_GUARDED_BY(task_mu_);
  std::atomic<bool> running_{false};
};

/// \brief A source emitting a fixed element on demand — for unit tests that
/// need precise control over arrival times.
class ManualSource final : public SourceNode {
 public:
  ManualSource(std::string label, Schema schema)
      : SourceNode(std::move(label)), schema_(std::move(schema)) {}

  const Schema& output_schema() const override { return schema_; }

  /// Emits one element with the given payload at the current time.
  void Push(Tuple tuple);

  /// Emits one element with full control over its temporal annotations.
  void PushElement(const StreamElement& e) { Produce(e); }

 private:
  Schema schema_;
};

}  // namespace pipes
