/// \file value_stats.h
/// \brief Value-distribution metadata: per-window quantiles of a column.
///
/// The paper lists "data distributions" among the source metadata items. This
/// helper registers, for any node:
///  - a (usually hidden) periodic item `value_distribution_epoch` that owns
///    an equi-width histogram gathered by an emit observer and snapshots it
///    once per window, and
///  - one *triggered* quantile item per requested quantile (`value_p50`,
///    `value_p90`, ...) computed from the latest snapshot.
///
/// All quantile items share one sketch and one observer — the handler-
/// sharing and dependency machinery keeps the gathering cost paid once.

#pragma once

#include <vector>

#include "common/status.h"
#include "stream/node.h"

namespace pipes {

/// Key of the hidden epoch item.
extern const MetadataKey kValueDistributionEpoch;

/// Key of the quantile item for `q` (e.g. 0.5 -> "value_p50").
MetadataKey ValueQuantileKey(double q);

/// Registers the epoch item plus one quantile item per entry of
/// `quantiles` over `column` of `node`'s emitted elements. The histogram
/// spans [lo, hi) with `buckets` equal-width bins.
Status RegisterValueQuantiles(Node& node, size_t column, double lo, double hi,
                              std::vector<double> quantiles = {0.5, 0.9,
                                                               0.99},
                              size_t buckets = 128);

}  // namespace pipes
