#include "stream/engine.h"

namespace pipes {

StreamEngine::StreamEngine(EngineMode mode, size_t worker_threads,
                           Duration metadata_period)
    : mode_(mode) {
  if (mode == EngineMode::kVirtualTime) {
    scheduler_ = std::make_unique<VirtualTimeScheduler>();
  } else {
    scheduler_ = std::make_unique<ThreadPoolScheduler>(worker_threads);
  }
  graph_ = std::make_unique<QueryGraph>(*scheduler_, metadata_period);
}

StreamEngine::~StreamEngine() {
  // Stop the real-time pool before the graph (tasks reference nodes).
  if (mode_ == EngineMode::kRealTime) {
    static_cast<ThreadPoolScheduler*>(scheduler_.get())->Shutdown();
  }
}

void StreamEngine::RunUntil(Timestamp t) { virtual_scheduler().RunUntil(t); }

void StreamEngine::RunFor(Duration d) { virtual_scheduler().RunFor(d); }

}  // namespace pipes
