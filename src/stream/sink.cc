#include "stream/sink.h"

namespace pipes {

void CollectorSink::ProcessElement(const StreamElement& e, size_t) {
  MutexLock lock(buf_mu_);
  buffer_.push_back(e);
  if (buffer_.size() > capacity_) buffer_.pop_front();
}

std::vector<StreamElement> CollectorSink::Elements() const {
  MutexLock lock(buf_mu_);
  return std::vector<StreamElement>(buffer_.begin(), buffer_.end());
}

size_t CollectorSink::size() const {
  MutexLock lock(buf_mu_);
  return buffer_.size();
}

void CollectorSink::Clear() {
  MutexLock lock(buf_mu_);
  buffer_.clear();
}

}  // namespace pipes
