/// \file sink.h
/// \brief Sink implementations: query endpoints for applications and tests.

#pragma once

#include <deque>
#include <functional>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "stream/node.h"

namespace pipes {

/// \brief Buffers the most recent results (bounded).
class CollectorSink final : public SinkNode {
 public:
  explicit CollectorSink(std::string label, size_t capacity = 1 << 20)
      : SinkNode(std::move(label)), capacity_(capacity) {}

  /// Snapshot of buffered elements (oldest first).
  std::vector<StreamElement> Elements() const;

  /// Number of buffered elements.
  size_t size() const;

  void Clear();

 protected:
  void ProcessElement(const StreamElement& e, size_t input_index) override;

 private:
  const size_t capacity_;
  mutable Mutex buf_mu_{"CollectorSink::buf_mu", lockorder::kRankLeaf};
  std::deque<StreamElement> buffer_ PIPES_GUARDED_BY(buf_mu_);
};

/// \brief Counts results without buffering.
class CountingSink final : public SinkNode {
 public:
  explicit CountingSink(std::string label) : SinkNode(std::move(label)) {}

  uint64_t count() const { return total_received(); }

 protected:
  void ProcessElement(const StreamElement&, size_t) override {}
};

/// \brief Invokes a callback per result element.
class CallbackSink final : public SinkNode {
 public:
  using Callback = std::function<void(const StreamElement&)>;

  CallbackSink(std::string label, Callback cb)
      : SinkNode(std::move(label)), cb_(std::move(cb)) {}

 protected:
  void ProcessElement(const StreamElement& e, size_t) override { cb_(e); }

 private:
  Callback cb_;
};

}  // namespace pipes
