#include "stream/node.h"

#include <cassert>
#include <unordered_set>

#include "common/reentrant_shared_mutex.h"
#include "metadata/descriptor.h"
#include "stream/graph.h"

namespace pipes {

namespace {

/// Cumulative online average of dependency 0, sampled once per evaluation.
/// eval_index() 0 is the activation evaluation (no data yet) and yields null.
Evaluator MakeRunningAverageEvaluator() {
  return [](EvalContext& ctx) -> MetadataValue {
    if (ctx.eval_index() == 0) return MetadataValue::Null();
    double x = ctx.DepDouble(0);
    if (ctx.Previous().is_null()) return MetadataValue(x);
    double n = static_cast<double>(ctx.eval_index());
    double prev = ctx.Previous().AsDouble();
    return MetadataValue(prev + (x - prev) / n);
  };
}

}  // namespace

Node::Node(Kind kind, std::string label)
    : MetadataProvider(std::move(label)), kind_(kind) {}

Node::~Node() = default;

std::vector<MetadataProvider*> Node::MetadataUpstreams() const {
  std::vector<MetadataProvider*> out;
  out.reserve(upstreams_.size());
  for (Node* n : upstreams_) out.push_back(n);
  return out;
}

std::vector<MetadataProvider*> Node::MetadataDownstreams() const {
  std::vector<MetadataProvider*> out;
  out.reserve(downstream_edges_.size());
  for (const Edge& e : downstream_edges_) out.push_back(e.node);
  return out;
}

void Node::AddUpstream(Node* n) {
  upstreams_.push_back(n);
  EnsureInputProbes(upstreams_.size());
}

void Node::AddDownstreamEdge(Node* n, size_t input_index) {
  downstream_edges_.push_back(Edge{n, input_index});
}

void Node::EnsureInputProbes(size_t count) {
  while (input_probes_.size() < count) {
    input_probes_.push_back(std::make_unique<CounterProbe>());
  }
}

void Node::Receive(const StreamElement& e, size_t input_index) {
  assert(kind_ != Kind::kSource && "sources do not receive elements");
  total_received_.fetch_add(1, std::memory_order_relaxed);
  any_input_probe_.Increment();
  if (input_index < input_probes_.size()) {
    input_probes_[input_index]->Increment();
  }
  if (input_queue_ != nullptr) {
    input_queue_->Push(InputQueue::Entry{e, input_index});
    return;
  }
  RecordProcessingLatency(e);
  ExclusiveLock lock(state_mutex());
  ProcessElement(e, input_index);
}

void Node::EnableInputQueue() {
  if (input_queue_ != nullptr) return;
  input_queue_ = std::make_unique<InputQueue>();
  auto& reg = metadata_registry();
  (void)reg.DefineOrRedefine(
      MetadataDescriptor::OnDemand(keys::kQueueSize)
          .WithEvaluator([this](EvalContext&) -> MetadataValue {
            return static_cast<int64_t>(input_queue_->size());
          })
          .WithDescription("pending elements in the input queue (on-demand)"));
  (void)reg.DefineOrRedefine(
      MetadataDescriptor::OnDemand(keys::kQueueBytes)
          .WithEvaluator([this](EvalContext&) -> MetadataValue {
            return static_cast<int64_t>(input_queue_->bytes());
          })
          .WithDescription("memory held by the input queue [bytes] (on-demand)"));
  (void)reg.DefineOrRedefine(
      MetadataDescriptor::OnDemand(keys::kQueueOldestAge)
          .WithEvaluator([this](EvalContext& ctx) -> MetadataValue {
            Timestamp oldest = input_queue_->oldest_timestamp();
            if (oldest == kTimestampMax) return 0.0;
            return ToSeconds(ctx.now() - oldest);
          })
          .WithDescription(
              "age of the oldest queued element [s] (on-demand)"));
}

bool Node::ProcessQueuedOne() {
  if (input_queue_ == nullptr) return false;
  InputQueue::Entry entry;
  if (!input_queue_->Pop(&entry)) return false;
  RecordProcessingLatency(entry.element);  // includes the queueing delay
  ExclusiveLock lock(state_mutex());
  ProcessElement(entry.element, entry.input_index);
  return true;
}

void Node::Emit(const StreamElement& e) {
  total_emitted_.fetch_add(1, std::memory_order_relaxed);
  output_probe_.Increment();
  if (observer_count_.load(std::memory_order_relaxed) > 0) {
    NotifyEmitObservers(e);
  }
  for (const Edge& edge : downstream_edges_) {
    edge.node->Receive(e, edge.input_index);
  }
}

void Node::AddEmitObserver(const std::string& id, EmitObserver fn) {
  MutexLock lock(observers_mu_);
  auto [it, inserted] = observers_.emplace(id, std::move(fn));
  if (!inserted) {
    it->second = std::move(fn);
  } else {
    observer_count_.fetch_add(1, std::memory_order_relaxed);
  }
}

void Node::RemoveEmitObserver(const std::string& id) {
  MutexLock lock(observers_mu_);
  if (observers_.erase(id) > 0) {
    observer_count_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void Node::NotifyEmitObservers(const StreamElement& e) {
  MutexLock lock(observers_mu_);
  for (auto& [id, fn] : observers_) fn(e);
}

void Node::RecordProcessingLatency(const StreamElement& e) {
  if (!latency_count_probe_.enabled() || graph_ == nullptr) return;
  Timestamp now = graph_->scheduler().clock().Now();
  latency_sum_probe_.Add(ToSeconds(now - e.timestamp));
  latency_count_probe_.Increment();
}

void Node::RegisterStandardMetadata() {
  auto& reg = metadata_registry();

  if (kind_ != Kind::kSink) {
    // Static items with evaluators are computed once, at first inclusion —
    // after the node is wired, when derived schemas are known.
    reg.Define(MetadataDescriptor::Static(keys::kSchema, "")
                   .WithEvaluator([this](EvalContext&) -> MetadataValue {
                     return output_schema().ToString();
                   })
                   .WithDescription("output schema (static)"));
    reg.Define(MetadataDescriptor::Static(keys::kElementSize, 0)
                   .WithEvaluator([this](EvalContext&) -> MetadataValue {
                     return static_cast<int64_t>(
                         output_schema().ElementSizeBytes());
                   })
                   .WithDescription("estimated element size in bytes (static)"));
  }

  reg.Define(
      MetadataDescriptor::Periodic(keys::kOutputRate, metadata_period())
          .WithEvaluator([this](EvalContext& ctx) -> MetadataValue {
            if (ctx.elapsed() <= 0) return 0.0;
            uint64_t delta = output_rate_cursor_.TakeDelta(output_probe_);
            return static_cast<double>(delta) / ToSeconds(ctx.elapsed());
          })
          .WithMonitoring(
              [this](MetadataProvider&) {
                output_probe_.Enable();
                output_rate_cursor_.Reset(output_probe_);
              },
              [this](MetadataProvider&) { output_probe_.Disable(); })
          .WithDescription("measured output rate [elements/s] (periodic)"));

  reg.Define(MetadataDescriptor::Triggered(keys::kAvgOutputRate)
                 .DependsOnSelf(keys::kOutputRate)
                 .WithEvaluator(MakeRunningAverageEvaluator())
                 .WithDescription(
                     "online average of the measured output rate (triggered)"));

  reg.Define(MetadataDescriptor::OnDemand(keys::kElementCount)
                 .WithEvaluator([this](EvalContext&) -> MetadataValue {
                   return static_cast<int64_t>(total_emitted());
                 })
                 .WithDescription("total elements emitted (on-demand)"));

  reg.Define(MetadataDescriptor::OnDemand(keys::kReuseCount)
                 .WithEvaluator([this](EvalContext&) -> MetadataValue {
                   return static_cast<int64_t>(use_count());
                 })
                 .WithDescription(
                     "number of registered queries sharing this node "
                     "(on-demand)"));

  if (kind_ != Kind::kSink) {
    // Value-distribution metadata (paper §1: "data distributions"): distinct
    // integer keys (column 0) observed per window, gathered by an emit
    // observer that only runs while the item is included.
    struct KeySketch {
      // Plain std::mutex: the sketch is a leaf local to this lambda capture,
      // never held across another lock, so it stays outside the lock-order
      // hierarchy.
      std::mutex mu;
      std::unordered_set<int64_t> keys;
    };
    auto sketch = std::make_shared<KeySketch>();
    reg.Define(
        MetadataDescriptor::Periodic(keys::kDistinctKeys, metadata_period())
            .WithEvaluator([sketch](EvalContext& ctx) -> MetadataValue {
              std::lock_guard<std::mutex> lock(sketch->mu);
              if (ctx.elapsed() <= 0) {
                sketch->keys.clear();
                return MetadataValue::Null();
              }
              int64_t count = static_cast<int64_t>(sketch->keys.size());
              sketch->keys.clear();
              return count;
            })
            .WithMonitoring(
                [this, sketch](MetadataProvider&) {
                  {
                    std::lock_guard<std::mutex> lock(sketch->mu);
                    sketch->keys.clear();
                  }
                  AddEmitObserver("distinct_keys",
                                  [sketch](const StreamElement& e) {
                                    if (e.tuple.arity() == 0) return;
                                    std::lock_guard<std::mutex> lock(sketch->mu);
                                    sketch->keys.insert(e.tuple.IntAt(0));
                                  });
                },
                [this](MetadataProvider&) {
                  RemoveEmitObserver("distinct_keys");
                })
            .WithDescription(
                "distinct integer keys (column 0) emitted per window "
                "(periodic; data-distribution metadata)"));
  }

  if (kind_ != Kind::kSource) {
    reg.Define(
        MetadataDescriptor::Periodic(keys::kProcessingLatency,
                                     metadata_period())
            .WithEvaluator([this](EvalContext& ctx) -> MetadataValue {
              if (ctx.elapsed() <= 0) return MetadataValue::Null();
              double sum = latency_sum_cursor_.TakeDelta(latency_sum_probe_);
              uint64_t count =
                  latency_count_cursor_.TakeDelta(latency_count_probe_);
              // Null (not the stale previous value) when nothing was
              // processed: consumers like the QoS shedder must not act on a
              // latency that no longer describes any traffic.
              if (count == 0) return MetadataValue::Null();
              return sum / static_cast<double>(count);
            })
            .WithMonitoring(
                [this](MetadataProvider&) {
                  latency_sum_probe_.Enable();
                  latency_count_probe_.Enable();
                  latency_sum_cursor_.Reset(latency_sum_probe_);
                  latency_count_cursor_.Reset(latency_count_probe_);
                },
                [this](MetadataProvider&) {
                  latency_sum_probe_.Disable();
                  latency_count_probe_.Disable();
                })
            .WithDescription(
                "mean delay between element timestamp and processing [s] "
                "(periodic; includes queueing delay in queued mode)"));
  }
}

void SourceNode::ProcessElement(const StreamElement&, size_t) {
  assert(false && "SourceNode::ProcessElement must never be called");
}

// ---------------------------------------------------------------------------
// OperatorNode standard metadata
// ---------------------------------------------------------------------------

void OperatorNode::RegisterStandardMetadata() {
  Node::RegisterStandardMetadata();
  auto& reg = metadata_registry();

  reg.Define(
      MetadataDescriptor::Periodic(keys::kInputRate, metadata_period())
          .WithEvaluator([this](EvalContext& ctx) -> MetadataValue {
            if (ctx.elapsed() <= 0) return 0.0;
            uint64_t delta = input_rate_cursor_.TakeDelta(any_input_probe());
            return static_cast<double>(delta) / ToSeconds(ctx.elapsed());
          })
          .WithMonitoring(
              [this](MetadataProvider&) {
                any_input_probe().Enable();
                input_rate_cursor_.Reset(any_input_probe());
              },
              [this](MetadataProvider&) { any_input_probe().Disable(); })
          .WithDescription(
              "measured input rate over all inputs [elements/s] (periodic)"));

  reg.Define(MetadataDescriptor::Triggered(keys::kAvgInputRate)
                 .DependsOnSelf(keys::kInputRate)
                 .WithEvaluator(MakeRunningAverageEvaluator())
                 .WithDescription(
                     "online average of the measured input rate (triggered)"));

  reg.Define(
      MetadataDescriptor::Triggered(keys::kVarInputRate)
          .DependsOnSelf(keys::kAvgInputRate)
          .DependsOnSelf(keys::kInputRate)
          .WithEvaluator([](EvalContext& ctx) -> MetadataValue {
            // Welford-style online variance against the running average item.
            if (ctx.eval_index() == 0) return MetadataValue::Null();
            double mean = ctx.DepDouble(0);
            double x = ctx.DepDouble(1);
            double n = static_cast<double>(ctx.eval_index());
            double prev =
                ctx.Previous().is_null() ? 0.0 : ctx.Previous().AsDouble();
            double d = x - mean;
            return MetadataValue(prev + (d * d - prev) / n);
          })
          .WithDescription(
              "online variance of the measured input rate (triggered)"));

  reg.Define(
      MetadataDescriptor::Periodic(keys::kSelectivity, metadata_period())
          .WithEvaluator([this](EvalContext& ctx) -> MetadataValue {
            uint64_t in = sel_in_cursor_.TakeDelta(any_input_probe());
            uint64_t out = sel_out_cursor_.TakeDelta(output_probe());
            if (in == 0) return ctx.Previous();  // keep the last estimate
            return static_cast<double>(out) / static_cast<double>(in);
          })
          .WithMonitoring(
              [this](MetadataProvider&) {
                any_input_probe().Enable();
                output_probe().Enable();
                sel_in_cursor_.Reset(any_input_probe());
                sel_out_cursor_.Reset(output_probe());
              },
              [this](MetadataProvider&) {
                any_input_probe().Disable();
                output_probe().Disable();
              })
          .WithDescription(
              "measured selectivity: output/input elements per window "
              "(periodic)"));

  reg.Define(MetadataDescriptor::Triggered(keys::kAvgSelectivity)
                 .DependsOnSelf(keys::kSelectivity)
                 .WithEvaluator(MakeRunningAverageEvaluator())
                 .WithDescription(
                     "online average of the measured selectivity (triggered)"));

  // The paper's §2.3 example: "the input/output ratio of an operator can be
  // derived from dividing the input rate by the output rate" — a cheap
  // on-demand item computed from two existing items.
  reg.Define(MetadataDescriptor::OnDemand(keys::kIoRatio)
                 .DependsOnSelf(keys::kInputRate)
                 .DependsOnSelf(keys::kOutputRate)
                 .WithEvaluator([](EvalContext& ctx) -> MetadataValue {
                   double in = ctx.DepDouble(0);
                   double out = ctx.DepDouble(1);
                   if (out == 0.0) return MetadataValue::Null();
                   return in / out;
                 })
                 .WithDescription(
                     "input/output rate ratio, derived on demand (§2.3)"));

  // "The measured memory usage of an operator results from the sizes of its
  // internal data structures ... multiplied with the sizes of the stream
  // elements." (§3.1) — cheap on-demand forwarding of state information.
  reg.Define(MetadataDescriptor::OnDemand(keys::kMemoryUsage)
                 .WithEvaluator([this](EvalContext&) -> MetadataValue {
                   return static_cast<int64_t>(StateMemoryBytes());
                 })
                 .WithDescription(
                     "measured memory usage of the operator state [bytes] "
                     "(on-demand)"));

  reg.Define(MetadataDescriptor::OnDemand(keys::kStateSize)
                 .WithEvaluator([this](EvalContext&) -> MetadataValue {
                   return static_cast<int64_t>(StateCount());
                 })
                 .WithDescription(
                     "elements currently held in operator state (on-demand)"));

  reg.Define(
      MetadataDescriptor::Periodic(keys::kCpuUsage, metadata_period())
          .WithEvaluator([this](EvalContext& ctx) -> MetadataValue {
            if (ctx.elapsed() <= 0) return 0.0;
            double delta = cpu_cursor_.TakeDelta(work_probe());
            return delta / ToSeconds(ctx.elapsed());
          })
          .WithMonitoring(
              [this](MetadataProvider&) {
                work_probe().Enable();
                cpu_cursor_.Reset(work_probe());
              },
              [this](MetadataProvider&) { work_probe().Disable(); })
          .WithDescription(
              "measured CPU usage [work units/s] (periodic)"));

  reg.Define(MetadataDescriptor::Static(keys::kImplementationType,
                                        ImplementationType())
                 .WithDescription("operator implementation type (static)"));
}

// ---------------------------------------------------------------------------
// SinkNode
// ---------------------------------------------------------------------------

const Schema& SinkNode::output_schema() const {
  static const Schema kEmpty;
  if (!upstreams().empty()) return upstreams()[0]->output_schema();
  return kEmpty;
}

void SinkNode::RegisterStandardMetadata() {
  Node::RegisterStandardMetadata();
  auto& reg = metadata_registry();

  // Query-level metadata (paper §1: QoS specifications, priority).
  reg.Define(MetadataDescriptor::Static(keys::kQosMaxLatency, 0.0)
                 .WithEvaluator([this](EvalContext&) -> MetadataValue {
                   return ToSeconds(qos_max_latency());
                 })
                 .WithDescription(
                     "QoS: maximum tolerated result latency [s] (static)"));

  reg.Define(MetadataDescriptor::Static(keys::kPriority, 0.0)
                 .WithEvaluator([this](EvalContext&) -> MetadataValue {
                   return priority();
                 })
                 .WithDescription("scheduling priority of the query (static)"));

  reg.Define(
      MetadataDescriptor::Periodic(keys::kResultRate, metadata_period())
          .WithEvaluator([this](EvalContext& ctx) -> MetadataValue {
            if (ctx.elapsed() <= 0) return 0.0;
            uint64_t delta = result_rate_cursor_.TakeDelta(any_input_probe());
            return static_cast<double>(delta) / ToSeconds(ctx.elapsed());
          })
          .WithMonitoring(
              [this](MetadataProvider&) {
                any_input_probe().Enable();
                result_rate_cursor_.Reset(any_input_probe());
              },
              [this](MetadataProvider&) { any_input_probe().Disable(); })
          .WithDescription("measured result rate [elements/s] (periodic)"));
}

}  // namespace pipes
