/// \file query_builder.h
/// \brief Fluent construction of continuous queries.
///
/// Wraps the node/Connect API in a chainable builder that accumulates the
/// first error (checked once at Register()):
///
/// \code
///   QueryBuilder qb(engine);
///   auto result = qb.FromSynthetic("sensors", 100.0, 16)
///                     .Window(Seconds(2))
///                     .JoinOn(qb.FromSynthetic("events", 50.0, 16)
///                                 .Window(Seconds(2)),
///                             0, 0)
///                     .Filter([](const Tuple& t) { return t.DoubleAt(1) > 0.5; })
///                     .Collect("out");
///   // result.ok() -> result->sink, result->query_id, started sources
/// \endcode
///
/// Window joins built through the builder get the Figure 3 cost-model
/// estimates registered automatically (disable via set_auto_cost_model).

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "costmodel/costmodel.h"
#include "stream/engine.h"
#include "stream/expr.h"
#include "stream/operators/aggregate.h"
#include "stream/operators/basic.h"
#include "stream/operators/count_window.h"
#include "stream/operators/group_aggregate.h"
#include "stream/operators/join.h"
#include "stream/operators/window.h"
#include "stream/sink.h"
#include "stream/source.h"

namespace pipes {

class QueryBuilder;

/// \brief Chainable handle to the current head of a query pipeline.
///
/// Copyable (a copy forks the pipeline from the same head). All chaining
/// methods are no-ops once an error occurred; the error surfaces at
/// Collect()/Count()/To().
class StreamBuilder {
 public:
  /// \name Operators
  ///@{
  StreamBuilder Filter(FilterOperator::Predicate predicate,
                       double work_cost = 1.0) const;
  /// Declarative filter: the expression is validated against the current
  /// schema and its estimated cost becomes the operator's work cost.
  StreamBuilder Filter(const expr::ExprPtr& predicate) const;
  StreamBuilder Map(Schema output_schema, MapOperator::MapFn fn) const;
  /// Declarative projection via expressions.
  StreamBuilder Select(const std::vector<expr::Projection>& projections) const;
  StreamBuilder Window(Duration window) const;
  StreamBuilder CountWindow(size_t n) const;
  StreamBuilder Shed(double drop_probability = 0.0) const;
  StreamBuilder Merge(const StreamBuilder& other) const;
  /// Hash equi-join with `other` on integer columns. Both sides should have
  /// windows applied; the cost model is registered when auto-cost-model is
  /// on and both inputs are TimeWindowOperators over sources.
  StreamBuilder JoinOn(const StreamBuilder& other, size_t left_column,
                       size_t right_column, bool hash = true) const;
  StreamBuilder Aggregate(Duration window, AggKind kind,
                          size_t column = 1) const;
  StreamBuilder GroupBy(Duration window, AggKind kind, size_t key_column = 0,
                        size_t value_column = 1) const;
  ///@}

  /// \name Terminals (register the query; start all involved sources)
  ///@{
  struct Built {
    std::shared_ptr<SinkNode> sink;
    QueryId query_id = 0;
  };
  /// Ends in a CollectorSink.
  Result<Built> Collect(const std::string& label,
                        size_t capacity = 1 << 20) const;
  /// Ends in a CountingSink.
  Result<Built> Count(const std::string& label) const;
  /// Ends in a caller-provided sink.
  Result<Built> To(const std::shared_ptr<SinkNode>& sink) const;
  ///@}

  /// The current head node (for subscriptions and inspection); null after
  /// an error.
  const std::shared_ptr<Node>& node() const { return node_; }

  /// First error on this pipeline (OK while healthy).
  const Status& status() const { return status_; }

 private:
  friend class QueryBuilder;
  StreamBuilder(QueryBuilder* builder, std::shared_ptr<Node> node)
      : builder_(builder), node_(std::move(node)) {}
  StreamBuilder(QueryBuilder* builder, Status error)
      : builder_(builder), status_(std::move(error)) {}

  /// Adds `next`, connects head -> next, returns the advanced builder.
  StreamBuilder Advance(std::shared_ptr<Node> next) const;

  QueryBuilder* builder_ = nullptr;
  std::shared_ptr<Node> node_;
  Status status_;
};

/// \brief Entry point: creates pipeline heads bound to one engine.
class QueryBuilder {
 public:
  explicit QueryBuilder(StreamEngine& engine) : engine_(engine) {}

  /// Starts a pipeline from an existing source.
  StreamBuilder From(std::shared_ptr<SourceNode> source);

  /// Creates a constant-rate synthetic source of (id, value) pairs.
  StreamBuilder FromSynthetic(const std::string& label, double rate_per_sec,
                              int64_t key_cardinality, uint64_t seed = 42);

  /// Whether JoinOn auto-registers the window-join cost model (default on).
  void set_auto_cost_model(bool on) { auto_cost_model_ = on; }

  StreamEngine& engine() { return engine_; }

  /// Fresh auto-generated label ("<prefix>_<n>").
  std::string NextLabel(const std::string& prefix);

  /// Sources created/seen by this builder; terminals start them all.
  const std::vector<std::shared_ptr<SourceNode>>& sources() const {
    return sources_;
  }

 private:
  friend class StreamBuilder;

  StreamEngine& engine_;
  bool auto_cost_model_ = true;
  int label_counter_ = 0;
  std::vector<std::shared_ptr<SourceNode>> sources_;
};

}  // namespace pipes
