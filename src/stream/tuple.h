/// \file tuple.h
/// \brief Relational values, tuples, and schemas of the stream engine.

#pragma once

#include <cassert>
#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace pipes {

/// Column data types supported by the engine.
enum class DataType { kBool, kInt64, kDouble, kString };

/// Human-readable type name.
const char* DataTypeToString(DataType t);

/// A single column value.
using Value = std::variant<bool, int64_t, double, std::string>;

/// The DataType of a Value.
DataType ValueType(const Value& v);

/// Numeric coercion of a Value (strings -> 0).
double ValueAsDouble(const Value& v);

/// Integer coercion of a Value (strings -> 0).
int64_t ValueAsInt(const Value& v);

/// Rendering for debug output.
std::string ValueToString(const Value& v);

/// Estimated in-memory size of a value of the given type, in bytes.
size_t DataTypeSize(DataType t);

/// \brief One stream tuple: a fixed-arity row of values.
class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<Value> values) : values_(std::move(values)) {}

  size_t arity() const { return values_.size(); }
  const Value& at(size_t i) const {
    assert(i < values_.size());
    return values_[i];
  }
  Value& at(size_t i) {
    assert(i < values_.size());
    return values_[i];
  }
  const std::vector<Value>& values() const { return values_; }

  /// Numeric view of column `i`.
  double DoubleAt(size_t i) const { return ValueAsDouble(at(i)); }
  int64_t IntAt(size_t i) const { return ValueAsInt(at(i)); }

  void Append(Value v) { values_.push_back(std::move(v)); }

  /// Concatenation of two tuples (join output).
  static Tuple Concat(const Tuple& a, const Tuple& b);

  /// Estimated in-memory size in bytes.
  size_t MemoryBytes() const;

  std::string ToString() const;

  bool operator==(const Tuple& other) const { return values_ == other.values_; }

 private:
  std::vector<Value> values_;
};

/// \brief One named, typed column of a schema.
struct Field {
  std::string name;
  DataType type;

  bool operator==(const Field& other) const {
    return name == other.name && type == other.type;
  }
};

/// \brief An ordered list of fields describing a stream's tuples.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

  size_t arity() const { return fields_.size(); }
  const Field& field(size_t i) const {
    assert(i < fields_.size());
    return fields_[i];
  }
  const std::vector<Field>& fields() const { return fields_; }

  /// Index of the field named `name`, or -1.
  int IndexOf(const std::string& name) const;

  /// Estimated per-tuple size in bytes (fixed-size approximation used by the
  /// element-size metadata item).
  size_t ElementSizeBytes() const;

  /// Schema of the concatenation of two schemas (join output).
  static Schema Concat(const Schema& a, const Schema& b);

  /// "name:type, name:type, ..." — the schema metadata string.
  std::string ToString() const;

  bool operator==(const Schema& other) const { return fields_ == other.fields_; }

 private:
  std::vector<Field> fields_;
};

}  // namespace pipes
