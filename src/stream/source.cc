#include "stream/source.h"

#include <cassert>

#include "stream/graph.h"

namespace pipes {

const Schema& PairSchema() {
  static const Schema kSchema({Field{"id", DataType::kInt64},
                               Field{"value", DataType::kDouble}});
  return kSchema;
}

TupleGenerator MakeUniformPairGenerator(int64_t key_cardinality,
                                        double value_lo, double value_hi) {
  return [key_cardinality, value_lo, value_hi](Rng& rng, Timestamp) {
    return Tuple({Value(rng.UniformInt(0, key_cardinality - 1)),
                  Value(rng.UniformDouble(value_lo, value_hi))});
  };
}

TupleGenerator MakeZipfPairGenerator(std::shared_ptr<ZipfDistribution> zipf,
                                     double value_lo, double value_hi) {
  return [zipf, value_lo, value_hi](Rng& rng, Timestamp) {
    return Tuple({Value(static_cast<int64_t>(zipf->Sample(rng))),
                  Value(rng.UniformDouble(value_lo, value_hi))});
  };
}

SyntheticSource::SyntheticSource(std::string label, Schema schema,
                                 std::unique_ptr<ArrivalProcess> arrivals,
                                 TupleGenerator generator, uint64_t seed)
    : SourceNode(std::move(label)),
      schema_(std::move(schema)),
      arrivals_(std::move(arrivals)),
      generator_(std::move(generator)),
      rng_(seed) {}

SyntheticSource::~SyntheticSource() { Stop(); }

void SyntheticSource::Start() {
  assert(graph() != nullptr && "source must be registered with a graph");
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true,
                                        std::memory_order_acq_rel)) {
    return;
  }
  ScheduleNext();
}

void SyntheticSource::Stop() {
  running_.store(false, std::memory_order_release);
  MutexLock lock(task_mu_);
  task_.Cancel();
}

void SyntheticSource::ScheduleNext() {
  Duration interval = arrivals_->NextInterval(rng_);
  // ScheduleAfter is called outside task_mu_ (it takes the scheduler's queue
  // lock). If Stop() slips in between, the freshly stored handle escapes the
  // Cancel() — the callback's running_ check makes that window harmless.
  TaskHandle next = graph()->scheduler().ScheduleAfter(interval, [this] {
    if (!running_.load(std::memory_order_acquire)) return;
    Timestamp now = graph()->scheduler().clock().Now();
    Produce(StreamElement(generator_(rng_, now), now));
    ScheduleNext();
  });
  MutexLock lock(task_mu_);
  task_ = std::move(next);
}

void ManualSource::Push(Tuple tuple) {
  Timestamp now = graph() != nullptr ? graph()->scheduler().clock().Now() : 0;
  Produce(StreamElement(std::move(tuple), now));
}

}  // namespace pipes
