/// \file queue.h
/// \brief Inter-operator input queues for queued (scheduled) execution.
///
/// The Chain scheduling strategy of the paper's motivation 1 exists "to
/// minimize the memory usage of inter-operator queues". In queued mode a
/// node's incoming elements are buffered here and drained by a
/// QueuedRuntime according to a scheduling strategy, instead of being
/// processed inline by the producer.

#pragma once

#include <cstdint>
#include <deque>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "stream/element.h"

namespace pipes {

/// \brief FIFO of pending (element, input slot) pairs for one node.
///
/// Thread safety: all methods are internally synchronized.
class InputQueue {
 public:
  struct Entry {
    StreamElement element;
    size_t input_index;
  };

  /// Appends an entry.
  void Push(Entry entry) {
    MutexLock lock(mu_);
    bytes_ += entry.element.MemoryBytes();
    ++total_enqueued_;
    entries_.push_back(std::move(entry));
  }

  /// Removes the oldest entry into `out`; false when empty.
  bool Pop(Entry* out) {
    MutexLock lock(mu_);
    if (entries_.empty()) return false;
    *out = std::move(entries_.front());
    entries_.pop_front();
    bytes_ -= out->element.MemoryBytes();
    ++total_dequeued_;
    return true;
  }

  size_t size() const {
    MutexLock lock(mu_);
    return entries_.size();
  }

  bool empty() const { return size() == 0; }

  /// Memory held by queued elements, in bytes.
  size_t bytes() const {
    MutexLock lock(mu_);
    return bytes_;
  }

  /// Timestamp of the oldest queued element (kTimestampMax when empty).
  Timestamp oldest_timestamp() const {
    MutexLock lock(mu_);
    return entries_.empty() ? kTimestampMax : entries_.front().element.timestamp;
  }

  uint64_t total_enqueued() const {
    MutexLock lock(mu_);
    return total_enqueued_;
  }
  uint64_t total_dequeued() const {
    MutexLock lock(mu_);
    return total_dequeued_;
  }

 private:
  mutable Mutex mu_{"InputQueue::mu", lockorder::kRankLeaf};
  std::deque<Entry> entries_ PIPES_GUARDED_BY(mu_);
  size_t bytes_ PIPES_GUARDED_BY(mu_) = 0;
  uint64_t total_enqueued_ PIPES_GUARDED_BY(mu_) = 0;
  uint64_t total_dequeued_ PIPES_GUARDED_BY(mu_) = 0;
};

}  // namespace pipes
