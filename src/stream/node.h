/// \file node.h
/// \brief Query-graph nodes: sources, operators, sinks (paper Figure 1).
///
/// "A query graph consists of sources at the bottom providing the data in
/// form of raw data streams. The intermediate nodes are operators processing
/// the data streams, whereas the sinks at the top establish the connections
/// to the applications." (paper §2.2) Every node is a MetadataProvider; the
/// standard metadata items of each node kind are registered by
/// RegisterStandardMetadata().

#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/types.h"
#include "metadata/keys.h"
#include "metadata/probes.h"
#include "metadata/provider.h"
#include "stream/element.h"
#include "stream/queue.h"

namespace pipes {

class QueryGraph;

/// \brief Base class of all query-graph nodes.
class Node : public MetadataProvider {
 public:
  enum class Kind { kSource, kOperator, kSink };

  ~Node() override;

  Kind kind() const { return kind_; }

  /// The graph owning this node (set by QueryGraph::AddNode).
  QueryGraph* graph() const { return graph_; }

  /// \name Topology
  ///@{
  /// Input providers, indexed by input slot.
  const std::vector<Node*>& upstreams() const { return upstreams_; }
  /// Outgoing edges: (consumer node, consumer's input slot).
  struct Edge {
    Node* node;
    size_t input_index;
  };
  const std::vector<Edge>& downstream_edges() const { return downstream_edges_; }

  std::vector<MetadataProvider*> MetadataUpstreams() const override;
  std::vector<MetadataProvider*> MetadataDownstreams() const override;

  /// Number of input slots this node accepts (0 for sources; operators
  /// define their arity; kUnbounded for sinks/union).
  static constexpr size_t kUnbounded = static_cast<size_t>(-1);
  virtual size_t max_inputs() const = 0;
  ///@}

  /// \name Data path
  ///@{
  /// Delivers `e` to input slot `input_index`. Counts input probes, then
  /// either processes the element inline under the node's state lock
  /// (default) or appends it to the input queue (queued mode).
  void Receive(const StreamElement& e, size_t input_index);

  /// Schema of elements this node emits.
  virtual const Schema& output_schema() const = 0;
  ///@}

  /// \name Queued execution (paper §1, motivation 1)
  ///@{
  /// Switches this node to queued mode: Receive() buffers into an input
  /// queue that a QueuedRuntime drains via ProcessQueuedOne(). Also defines
  /// the queue metadata items (size, bytes, oldest age). Idempotent.
  void EnableInputQueue();

  /// The input queue, or nullptr in inline mode.
  InputQueue* input_queue() const { return input_queue_.get(); }

  /// Dequeues and processes one buffered element; false when the queue is
  /// empty (or the node is in inline mode).
  bool ProcessQueuedOne();
  ///@}

  /// \name Standard metadata
  /// Registers this node kind's metadata descriptors. Subclasses extend (and
  /// may Redefine inherited items, paper §4.4.2); called once by
  /// QueryGraph::AddNode after the metadata manager is attached.
  ///@{
  virtual void RegisterStandardMetadata();

  /// The fixed window used by this node's periodic metadata items.
  Duration metadata_period() const { return metadata_period_; }
  void set_metadata_period(Duration p) { metadata_period_ = p; }
  ///@}

  /// \name Counters exposed to metadata
  ///@{
  /// Total elements emitted since construction (always on, relaxed atomic).
  uint64_t total_emitted() const {
    return total_emitted_.load(std::memory_order_relaxed);
  }
  /// Total elements received since construction.
  uint64_t total_received() const {
    return total_received_.load(std::memory_order_relaxed);
  }
  CounterProbe& output_probe() { return output_probe_; }
  CounterProbe& input_probe(size_t i) { return *input_probes_.at(i); }
  /// Input probe counting arrivals on all slots together.
  CounterProbe& any_input_probe() { return any_input_probe_; }
  GaugeProbe& work_probe() { return work_probe_; }
  ///@}

  /// Number of registered queries using this node (subquery sharing).
  int use_count() const { return use_count_.load(std::memory_order_relaxed); }

  /// \name Emit observers (monitoring code over emitted elements)
  /// Metadata items that need to inspect element *values* (e.g. the
  /// distinct-keys sketch) install an observer via their monitoring hooks.
  /// With no observers installed, Emit pays one relaxed atomic load.
  ///@{
  using EmitObserver = std::function<void(const StreamElement&)>;
  /// Installs an observer under `id` (replacing any previous one with the
  /// same id).
  void AddEmitObserver(const std::string& id, EmitObserver fn);
  void RemoveEmitObserver(const std::string& id);
  ///@}

  /// \name Processing latency probes
  /// When enabled (by the processing-latency metadata item), the time
  /// between an element's timestamp and the moment it is actually processed
  /// is accumulated — in queued mode this measures queueing delay.
  ///@{
  GaugeProbe& latency_sum_probe() { return latency_sum_probe_; }
  CounterProbe& latency_count_probe() { return latency_count_probe_; }
  ///@}

 protected:
  Node(Kind kind, std::string label);

  /// Node-specific processing; runs with the state lock held exclusively.
  /// Sources never receive; their override asserts.
  virtual void ProcessElement(const StreamElement& e, size_t input_index) = 0;

  /// Emits `e` to all downstream consumers (counts output probes first).
  void Emit(const StreamElement& e);

  /// Accounts `units` of simulated CPU work (probe-gated).
  void AddWork(double units) { work_probe_.Add(units); }

 private:
  friend class QueryGraph;

  void AddUpstream(Node* n);
  void AddDownstreamEdge(Node* n, size_t input_index);
  void EnsureInputProbes(size_t count);

  // Structural wiring happens in the single-threaded graph-building phase
  // before any task runs; QueryGraph::graph_mu_ serializes later mutation.
  Kind kind_;  // pipes-analyze: unguarded(fixed at construction)
  QueryGraph* graph_ = nullptr;  // pipes-analyze: unguarded(graph-build phase, then QueryGraph::graph_mu_)
  std::vector<Node*> upstreams_;  // pipes-analyze: unguarded(graph-build phase, then QueryGraph::graph_mu_)
  std::vector<Edge> downstream_edges_;  // pipes-analyze: unguarded(graph-build phase, then QueryGraph::graph_mu_)
  Duration metadata_period_ = kMicrosPerSecond;  // pipes-analyze: unguarded(graph-build phase, then QueryGraph::graph_mu_)

  std::atomic<uint64_t> total_emitted_{0};
  std::atomic<uint64_t> total_received_{0};
  std::atomic<int> use_count_{0};

  void NotifyEmitObservers(const StreamElement& e);
  void RecordProcessingLatency(const StreamElement& e);

  // Probes are internally atomic (see probes.h); the vector itself only
  // grows during the graph-build phase (EnsureInputProbes from AddEdge).
  CounterProbe output_probe_;     // pipes-analyze: unguarded(internally atomic)
  CounterProbe any_input_probe_;  // pipes-analyze: unguarded(internally atomic)
  std::vector<std::unique_ptr<CounterProbe>> input_probes_;  // pipes-analyze: unguarded(graph-build phase)
  GaugeProbe work_probe_;         // pipes-analyze: unguarded(internally atomic)
  GaugeProbe latency_sum_probe_;  // pipes-analyze: unguarded(internally atomic)
  CounterProbe latency_count_probe_;  // pipes-analyze: unguarded(internally atomic)
  // pipes-analyze: unguarded(installed during graph build; the queue is internally synchronized)
  std::unique_ptr<InputQueue> input_queue_;
  std::atomic<int> observer_count_{0};
  mutable Mutex observers_mu_{"Node::observers_mu", lockorder::kRankLeaf};
  std::map<std::string, EmitObserver> observers_ PIPES_GUARDED_BY(observers_mu_);

  // Cursors owned per standard metadata item (reset on activation). Each is
  // read by exactly one serialized metadata evaluator.
  ProbeCursor output_rate_cursor_;   // pipes-analyze: unguarded(single serialized evaluator)
  ProbeCursor avg_helper_cursor_;    // pipes-analyze: unguarded(single serialized evaluator)
  GaugeCursor latency_sum_cursor_;   // pipes-analyze: unguarded(single serialized evaluator)
  ProbeCursor latency_count_cursor_;  // pipes-analyze: unguarded(single serialized evaluator)
};

/// \brief Base class for stream sources.
///
/// Sources have no inputs; they produce elements via Emit() — typically
/// driven by the scheduler (see SyntheticSource).
class SourceNode : public Node {
 public:
  size_t max_inputs() const override { return 0; }

 protected:
  explicit SourceNode(std::string label)
      : Node(Kind::kSource, std::move(label)) {}

  void ProcessElement(const StreamElement&, size_t) override;

 public:
  /// Public emission hook so drivers (schedulers, tests) can push elements.
  void Produce(const StreamElement& e) { Emit(e); }
};

/// \brief Base class for stream operators.
///
/// Registers the operator-level standard metadata (input rates, selectivity,
/// io-ratio, memory/state/CPU usage).
class OperatorNode : public Node {
 public:
  void RegisterStandardMetadata() override;

  /// Number of elements currently held in operator state.
  virtual size_t StateCount() const { return 0; }

  /// Estimated bytes of operator state.
  virtual size_t StateMemoryBytes() const { return 0; }

  /// Implementation type string (paper §1: "implementation type
  /// (nested-loops, hash-based)").
  virtual std::string ImplementationType() const { return "stateless"; }

 protected:
  OperatorNode(std::string label) : Node(Kind::kOperator, std::move(label)) {}

 private:
  ProbeCursor input_rate_cursor_;
  ProbeCursor sel_in_cursor_;
  ProbeCursor sel_out_cursor_;
  GaugeCursor cpu_cursor_;
};

/// \brief Base class for sinks: the query endpoints applications consume.
///
/// Carries the query-level metadata (QoS, priority, result rate).
class SinkNode : public Node {
 public:
  size_t max_inputs() const override { return kUnbounded; }
  const Schema& output_schema() const override;
  void RegisterStandardMetadata() override;

  /// QoS specification: maximum tolerated result latency (static metadata).
  Duration qos_max_latency() const { return qos_max_latency_; }
  void set_qos_max_latency(Duration d) { qos_max_latency_ = d; }

  /// Scheduling priority (static metadata).
  double priority() const { return priority_; }
  void set_priority(double p) { priority_ = p; }

 protected:
  explicit SinkNode(std::string label) : Node(Kind::kSink, std::move(label)) {}

 private:
  Duration qos_max_latency_ = Seconds(1);
  double priority_ = 1.0;
  ProbeCursor result_rate_cursor_;
};

}  // namespace pipes
