#include "stream/tuple.h"

#include <sstream>

namespace pipes {

const char* DataTypeToString(DataType t) {
  switch (t) {
    case DataType::kBool:
      return "bool";
    case DataType::kInt64:
      return "int64";
    case DataType::kDouble:
      return "double";
    case DataType::kString:
      return "string";
  }
  return "unknown";
}

DataType ValueType(const Value& v) {
  switch (v.index()) {
    case 0:
      return DataType::kBool;
    case 1:
      return DataType::kInt64;
    case 2:
      return DataType::kDouble;
    default:
      return DataType::kString;
  }
}

double ValueAsDouble(const Value& v) {
  switch (v.index()) {
    case 0:
      return std::get<bool>(v) ? 1.0 : 0.0;
    case 1:
      return static_cast<double>(std::get<int64_t>(v));
    case 2:
      return std::get<double>(v);
    default:
      return 0.0;
  }
}

int64_t ValueAsInt(const Value& v) {
  switch (v.index()) {
    case 0:
      return std::get<bool>(v) ? 1 : 0;
    case 1:
      return std::get<int64_t>(v);
    case 2:
      return static_cast<int64_t>(std::get<double>(v));
    default:
      return 0;
  }
}

std::string ValueToString(const Value& v) {
  switch (v.index()) {
    case 0:
      return std::get<bool>(v) ? "true" : "false";
    case 1:
      return std::to_string(std::get<int64_t>(v));
    case 2: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.6g", std::get<double>(v));
      return buf;
    }
    default:
      return std::get<std::string>(v);
  }
}

size_t DataTypeSize(DataType t) {
  switch (t) {
    case DataType::kBool:
      return 1;
    case DataType::kInt64:
    case DataType::kDouble:
      return 8;
    case DataType::kString:
      return 32;  // average string payload approximation
  }
  return 8;
}

Tuple Tuple::Concat(const Tuple& a, const Tuple& b) {
  std::vector<Value> values;
  values.reserve(a.arity() + b.arity());
  values.insert(values.end(), a.values().begin(), a.values().end());
  values.insert(values.end(), b.values().begin(), b.values().end());
  return Tuple(std::move(values));
}

size_t Tuple::MemoryBytes() const {
  size_t bytes = sizeof(Tuple) + values_.capacity() * sizeof(Value);
  for (const auto& v : values_) {
    if (std::holds_alternative<std::string>(v)) {
      bytes += std::get<std::string>(v).capacity();
    }
  }
  return bytes;
}

std::string Tuple::ToString() const {
  std::ostringstream os;
  os << "(";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i) os << ", ";
    os << ValueToString(values_[i]);
  }
  os << ")";
  return os.str();
}

int Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

size_t Schema::ElementSizeBytes() const {
  // Mirrors the in-memory representation (StreamElement::MemoryBytes):
  // two timestamps, the tuple header, one variant slot per column, plus the
  // average string payload for string columns.
  size_t bytes = 2 * sizeof(int64_t) + sizeof(Tuple);
  for (const auto& f : fields_) {
    bytes += sizeof(Value);
    if (f.type == DataType::kString) bytes += DataTypeSize(DataType::kString);
  }
  return bytes;
}

Schema Schema::Concat(const Schema& a, const Schema& b) {
  std::vector<Field> fields;
  fields.reserve(a.arity() + b.arity());
  fields.insert(fields.end(), a.fields().begin(), a.fields().end());
  fields.insert(fields.end(), b.fields().begin(), b.fields().end());
  return Schema(std::move(fields));
}

std::string Schema::ToString() const {
  std::ostringstream os;
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i) os << ", ";
    os << fields_[i].name << ":" << DataTypeToString(fields_[i].type);
  }
  return os.str();
}

}  // namespace pipes
