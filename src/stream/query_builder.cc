#include "stream/query_builder.h"

namespace pipes {

// ---------------------------------------------------------------------------
// QueryBuilder
// ---------------------------------------------------------------------------

std::string QueryBuilder::NextLabel(const std::string& prefix) {
  return prefix + "_" + std::to_string(++label_counter_);
}

StreamBuilder QueryBuilder::From(std::shared_ptr<SourceNode> source) {
  if (source == nullptr) {
    return StreamBuilder(this, Status::InvalidArgument("null source"));
  }
  if (source->graph() == nullptr) {
    engine_.graph().RegisterNode(source);
  }
  if (source->graph() != &engine_.graph()) {
    return StreamBuilder(
        this, Status::InvalidArgument("source belongs to a different graph"));
  }
  sources_.push_back(source);
  return StreamBuilder(this, std::move(source));
}

StreamBuilder QueryBuilder::FromSynthetic(const std::string& label,
                                          double rate_per_sec,
                                          int64_t key_cardinality,
                                          uint64_t seed) {
  if (rate_per_sec <= 0.0 || key_cardinality <= 0) {
    return StreamBuilder(
        this, Status::InvalidArgument("synthetic source needs positive rate "
                                      "and key cardinality"));
  }
  auto interval = static_cast<Duration>(kMicrosPerSecond / rate_per_sec);
  auto source = engine_.graph().AddNode<SyntheticSource>(
      label, PairSchema(), std::make_unique<ConstantArrivals>(interval),
      MakeUniformPairGenerator(key_cardinality), seed);
  sources_.push_back(source);
  return StreamBuilder(this, std::move(source));
}

// ---------------------------------------------------------------------------
// StreamBuilder
// ---------------------------------------------------------------------------

StreamBuilder StreamBuilder::Advance(std::shared_ptr<Node> next) const {
  if (!status_.ok()) return *this;
  Status st = builder_->engine_.graph().Connect(*node_, *next);
  if (!st.ok()) return StreamBuilder(builder_, st);
  return StreamBuilder(builder_, std::move(next));
}

StreamBuilder StreamBuilder::Filter(FilterOperator::Predicate predicate,
                                    double work_cost) const {
  if (!status_.ok()) return *this;
  return Advance(builder_->engine_.graph().AddNode<FilterOperator>(
      builder_->NextLabel("filter"), std::move(predicate), work_cost));
}

StreamBuilder StreamBuilder::Filter(const expr::ExprPtr& predicate) const {
  if (!status_.ok()) return *this;
  auto compiled = expr::CompilePredicate(predicate, node_->output_schema());
  if (!compiled.ok()) return StreamBuilder(builder_, compiled.status());
  return Filter(std::move(compiled.value()), predicate->Cost());
}

StreamBuilder StreamBuilder::Select(
    const std::vector<expr::Projection>& projections) const {
  if (!status_.ok()) return *this;
  auto compiled =
      expr::CompileProjection(projections, node_->output_schema());
  if (!compiled.ok()) return StreamBuilder(builder_, compiled.status());
  return Map(std::move(compiled.value().first),
             std::move(compiled.value().second));
}

StreamBuilder StreamBuilder::Map(Schema output_schema,
                                 MapOperator::MapFn fn) const {
  if (!status_.ok()) return *this;
  return Advance(builder_->engine_.graph().AddNode<MapOperator>(
      builder_->NextLabel("map"), std::move(output_schema), std::move(fn)));
}

StreamBuilder StreamBuilder::Window(Duration window) const {
  if (!status_.ok()) return *this;
  if (window <= 0) {
    return StreamBuilder(builder_,
                         Status::InvalidArgument("window must be positive"));
  }
  return Advance(builder_->engine_.graph().AddNode<TimeWindowOperator>(
      builder_->NextLabel("window"), window));
}

StreamBuilder StreamBuilder::CountWindow(size_t n) const {
  if (!status_.ok()) return *this;
  if (n == 0) {
    return StreamBuilder(
        builder_, Status::InvalidArgument("count window must be positive"));
  }
  return Advance(builder_->engine_.graph().AddNode<CountWindowOperator>(
      builder_->NextLabel("count_window"), n));
}

StreamBuilder StreamBuilder::Shed(double drop_probability) const {
  if (!status_.ok()) return *this;
  return Advance(builder_->engine_.graph().AddNode<RandomDropOperator>(
      builder_->NextLabel("shed"), drop_probability));
}

StreamBuilder StreamBuilder::Merge(const StreamBuilder& other) const {
  if (!status_.ok()) return *this;
  if (!other.status_.ok()) return other;
  auto merge = builder_->engine_.graph().AddNode<UnionOperator>(
      builder_->NextLabel("union"));
  StreamBuilder advanced = Advance(merge);
  if (!advanced.status_.ok()) return advanced;
  Status st = builder_->engine_.graph().Connect(*other.node_, *merge);
  if (!st.ok()) return StreamBuilder(builder_, st);
  return advanced;
}

StreamBuilder StreamBuilder::JoinOn(const StreamBuilder& other,
                                    size_t left_column, size_t right_column,
                                    bool hash) const {
  if (!status_.ok()) return *this;
  if (!other.status_.ok()) return other;
  auto& g = builder_->engine_.graph();
  std::shared_ptr<SlidingWindowJoin> join;
  std::string label = builder_->NextLabel("join");
  if (hash) {
    join = g.AddNode<SlidingWindowJoin>(label, left_column, right_column);
  } else {
    join = g.AddNode<SlidingWindowJoin>(
        label, EquiJoinPredicate(left_column, right_column));
  }
  Status st = g.Connect(*node_, *join);
  if (st.ok()) st = g.Connect(*other.node_, *join);
  if (!st.ok()) return StreamBuilder(builder_, st);

  if (builder_->auto_cost_model_) {
    // Register the Figure 3 estimates where the plan shape supports them:
    // both inputs are time windows directly over nodes that can carry a
    // source-style rate estimate.
    auto* lwin = dynamic_cast<TimeWindowOperator*>(node_.get());
    auto* rwin = dynamic_cast<TimeWindowOperator*>(other.node_.get());
    if (lwin != nullptr && rwin != nullptr) {
      auto estimate_input = [](TimeWindowOperator* w) -> Node* {
        return w->upstreams().empty() ? nullptr : w->upstreams()[0];
      };
      Node* lsrc = estimate_input(lwin);
      Node* rsrc = estimate_input(rwin);
      if (lsrc != nullptr && rsrc != nullptr) {
        auto define_rate_estimate = [](Node* n) {
          // Sources (and any rate-carrying node) estimate via the measured
          // output rate; ignore AlreadyExists from shared subplans.
          Status s = n->metadata_registry().Define(
              MetadataDescriptor::Triggered(keys::kEstOutputRate)
                  .DependsOnSelf(keys::kOutputRate)
                  .WithEvaluator([](EvalContext& ctx) -> MetadataValue {
                    return ctx.DepDouble(0);
                  })
                  .WithDescription(
                      "estimated rate: tracks the measured output rate "
                      "(triggered)"));
          if (!s.ok() && s.code() != StatusCode::kAlreadyExists) return s;
          return Status::OK();
        };
        Status cs = define_rate_estimate(lsrc);
        if (cs.ok()) cs = define_rate_estimate(rsrc);
        if (cs.ok()) cs = costmodel::RegisterWindowEstimates(*lwin);
        if (cs.ok() && rwin != lwin) {
          cs = costmodel::RegisterWindowEstimates(*rwin);
        }
        if (cs.ok()) {
          cs = costmodel::RegisterJoinEstimates(*join, 1.0, /*adaptive=*/hash);
        }
        if (!cs.ok() && cs.code() != StatusCode::kAlreadyExists) {
          return StreamBuilder(builder_, cs);
        }
      }
    }
  }
  return StreamBuilder(builder_, std::move(join));
}

StreamBuilder StreamBuilder::Aggregate(Duration window, AggKind kind,
                                       size_t column) const {
  if (!status_.ok()) return *this;
  return Advance(builder_->engine_.graph().AddNode<TumblingAggregateOperator>(
      builder_->NextLabel("aggregate"), window, kind, column));
}

StreamBuilder StreamBuilder::GroupBy(Duration window, AggKind kind,
                                     size_t key_column,
                                     size_t value_column) const {
  if (!status_.ok()) return *this;
  return Advance(builder_->engine_.graph().AddNode<GroupedAggregateOperator>(
      builder_->NextLabel("group_by"), window, kind, key_column,
      value_column));
}

Result<StreamBuilder::Built> StreamBuilder::To(
    const std::shared_ptr<SinkNode>& sink) const {
  if (!status_.ok()) return status_;
  if (sink == nullptr) return Status::InvalidArgument("null sink");
  if (sink->graph() == nullptr) {
    builder_->engine_.graph().RegisterNode(sink);
  }
  Status st = builder_->engine_.graph().Connect(*node_, *sink);
  if (!st.ok()) return st;
  Result<QueryId> id = builder_->engine_.graph().RegisterQuery(sink);
  if (!id.ok()) return id.status();
  // Start every source this builder created; idempotent for running ones.
  for (const auto& source : builder_->sources_) {
    if (auto* synthetic = dynamic_cast<SyntheticSource*>(source.get())) {
      synthetic->Start();
    }
  }
  return Built{sink, id.value()};
}

Result<StreamBuilder::Built> StreamBuilder::Collect(const std::string& label,
                                                    size_t capacity) const {
  if (!status_.ok()) return status_;
  return To(builder_->engine_.graph().AddNode<CollectorSink>(label, capacity));
}

Result<StreamBuilder::Built> StreamBuilder::Count(
    const std::string& label) const {
  if (!status_.ok()) return status_;
  return To(builder_->engine_.graph().AddNode<CountingSink>(label));
}

}  // namespace pipes
