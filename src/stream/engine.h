/// \file engine.h
/// \brief Facade bundling a scheduler, query graph, and metadata manager.
///
/// Two execution modes:
///  - kVirtualTime: fully deterministic; sources, periodic metadata, and
///    propagation run in strict timestamp order under RunUntil()/RunFor().
///    Used by tests and the figure-reproduction harnesses.
///  - kRealTime: a worker-thread pool drives sources and periodic metadata
///    against the wall clock (paper §4.3); exercises the locking scheme.

#pragma once

#include <cassert>
#include <memory>

#include "common/scheduler.h"
#include "stream/graph.h"

namespace pipes {

enum class EngineMode { kVirtualTime, kRealTime };

class StreamEngine {
 public:
  /// \param mode execution mode.
  /// \param worker_threads pool size in kRealTime mode (ignored otherwise).
  /// \param metadata_period default window for periodic metadata items.
  explicit StreamEngine(EngineMode mode = EngineMode::kVirtualTime,
                        size_t worker_threads = 1,
                        Duration metadata_period = kMicrosPerSecond);
  ~StreamEngine();

  StreamEngine(const StreamEngine&) = delete;
  StreamEngine& operator=(const StreamEngine&) = delete;

  EngineMode mode() const { return mode_; }
  QueryGraph& graph() { return *graph_; }
  MetadataManager& metadata() { return graph_->metadata_manager(); }
  TaskScheduler& scheduler() { return *scheduler_; }
  Clock& clock() { return scheduler_->clock(); }

  /// Current time.
  Timestamp Now() { return clock().Now(); }

  /// \name Virtual-time control (asserts kVirtualTime mode)
  ///@{
  /// Executes everything scheduled up to `t` and advances the clock to `t`.
  void RunUntil(Timestamp t);
  /// RunUntil(Now() + d).
  void RunFor(Duration d);
  VirtualTimeScheduler& virtual_scheduler() {
    assert(mode_ == EngineMode::kVirtualTime);
    return *static_cast<VirtualTimeScheduler*>(scheduler_.get());
  }
  ///@}

 private:
  EngineMode mode_;
  std::unique_ptr<TaskScheduler> scheduler_;
  std::unique_ptr<QueryGraph> graph_;
};

}  // namespace pipes
