#include "stream/operators/count_window.h"

namespace pipes {

const Schema& CountWindowOperator::output_schema() const {
  static const Schema kEmpty;
  if (!upstreams().empty()) return upstreams()[0]->output_schema();
  return kEmpty;
}

void CountWindowOperator::ProcessElement(const StreamElement& e, size_t) {
  AddWork(1.0);
  pending_.push_back(e);
  pending_bytes_ += e.MemoryBytes();
  if (pending_.size() > n_) {
    StreamElement out = std::move(pending_.front());
    pending_.pop_front();
    pending_bytes_ -= out.MemoryBytes();
    // The popped element's validity ends now: `n_` elements arrived after it.
    out.validity_end = e.timestamp;
    Emit(out);
  }
}

void CountWindowOperator::Flush() {
  ExclusiveLock lock(state_mutex());
  while (!pending_.empty()) {
    StreamElement out = std::move(pending_.front());
    pending_.pop_front();
    pending_bytes_ -= out.MemoryBytes();
    Emit(out);
  }
}

}  // namespace pipes
