#include "stream/operators/sweep_area.h"

#include "metadata/descriptor.h"
#include "metadata/keys.h"

namespace pipes {

KeyExtractor KeyColumn(size_t index) {
  return [index](const Tuple& t) { return t.IntAt(index); };
}

void SweepArea::RegisterModuleMetadata() {
  // Evaluators run on scheduler workers concurrently with the owning join's
  // element processing; both sides synchronize on this module's state lock
  // (paper §4.2 applied recursively to modules, §4.5).
  auto& reg = metadata_registry();
  reg.Define(MetadataDescriptor::OnDemand(keys::kStateSize)
                 .WithEvaluator([this](EvalContext&) -> MetadataValue {
                   SharedLock lock(state_mutex());
                   return static_cast<int64_t>(Size());
                 })
                 .WithDescription("elements stored in this sweep area"));
  reg.Define(MetadataDescriptor::OnDemand(keys::kMemoryUsage)
                 .WithEvaluator([this](EvalContext&) -> MetadataValue {
                   SharedLock lock(state_mutex());
                   return static_cast<int64_t>(MemoryBytes());
                 })
                 .WithDescription("memory footprint of this sweep area [bytes]"));
  reg.Define(MetadataDescriptor::Static(keys::kImplementationType,
                                        ImplementationType())
                 .WithDescription("sweep-area data structure"));
}

// --- ListSweepArea -----------------------------------------------------------

void ListSweepArea::Insert(const StreamElement& e) {
  bytes_ += e.MemoryBytes();
  elements_.emplace(e.validity_end, e);
}

size_t ListSweepArea::Expire(Timestamp t) {
  size_t removed = 0;
  auto it = elements_.begin();
  while (it != elements_.end() && it->first <= t) {
    bytes_ -= it->second.MemoryBytes();
    it = elements_.erase(it);
    ++removed;
  }
  return removed;
}

size_t ListSweepArea::Probe(
    const StreamElement&,
    const std::function<void(const StreamElement&)>& fn) {
  for (const auto& [end, e] : elements_) fn(e);
  return elements_.size();
}

// --- HashSweepArea -----------------------------------------------------------

void HashSweepArea::Insert(const StreamElement& e) {
  int64_t key = key_(e.tuple);
  uint64_t id = next_id_++;
  bytes_ += e.MemoryBytes() + sizeof(Entry) + 2 * sizeof(void*);
  table_.emplace(key, Entry{id, e});
  expiry_.emplace(e.validity_end, std::make_pair(key, id));
}

size_t HashSweepArea::Expire(Timestamp t) {
  size_t removed = 0;
  auto it = expiry_.begin();
  while (it != expiry_.end() && it->first <= t) {
    auto [key, id] = it->second;
    auto range = table_.equal_range(key);
    for (auto tit = range.first; tit != range.second; ++tit) {
      if (tit->second.id == id) {
        bytes_ -= tit->second.element.MemoryBytes() + sizeof(Entry) +
                  2 * sizeof(void*);
        table_.erase(tit);
        break;
      }
    }
    it = expiry_.erase(it);
    ++removed;
  }
  return removed;
}

size_t HashSweepArea::Probe(
    const StreamElement& probe,
    const std::function<void(const StreamElement&)>& fn) {
  const KeyExtractor& pk = probe_key_ ? probe_key_ : key_;
  int64_t key = pk(probe.tuple);
  size_t examined = 0;
  auto range = table_.equal_range(key);
  for (auto it = range.first; it != range.second; ++it) {
    fn(it->second.element);
    ++examined;
  }
  return examined;
}

}  // namespace pipes
