/// \file window.h
/// \brief The time-based sliding window operator (paper §2.5).
///
/// "This operator assigns a validity to each incoming stream element
/// according to the window size." The window size is runtime-adjustable —
/// the adaptive resource manager of §3.3 shrinks/grows it — and every change
/// fires the window-size metadata event so dependent triggered items
/// (estimated element validity, estimated join costs) are re-computed.

#pragma once

#include <atomic>

#include "stream/node.h"

namespace pipes {

class TimeWindowOperator final : public OperatorNode {
 public:
  TimeWindowOperator(std::string label, Duration window_size)
      : OperatorNode(std::move(label)), window_size_(window_size) {}

  size_t max_inputs() const override { return 1; }
  const Schema& output_schema() const override;

  /// Current window size in microseconds.
  Duration window_size() const {
    return window_size_.load(std::memory_order_relaxed);
  }

  /// Changes the window size and fires the window-size event (paper §3.3:
  /// "Whenever the window size is changed by the resource manager ... an
  /// event is fired").
  void set_window_size(Duration w);

  void RegisterStandardMetadata() override;

 protected:
  void ProcessElement(const StreamElement& e, size_t input_index) override;

 private:
  std::atomic<Duration> window_size_;
};

}  // namespace pipes
