/// \file sweep_area.h
/// \brief Join state modules: exchangeable data structures holding the
/// window contents of one join input (paper §4.5).
///
/// "The join operator can be based on different data structures to store its
/// state (lists, hash tables, etc.). Metadata items can also depend on
/// properties of these modules." Each sweep area is a MetadataProvider; the
/// join registers its areas as modules and derives its memory usage from
/// their metadata items (Figure 3).

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>

#include "metadata/provider.h"
#include "stream/element.h"

namespace pipes {

/// Extracts the equi-join key of a tuple.
using KeyExtractor = std::function<int64_t(const Tuple&)>;

/// Returns a key extractor reading integer column `index`.
KeyExtractor KeyColumn(size_t index);

/// \brief Holds the currently valid elements of one join input.
class SweepArea : public MetadataProvider {
 public:
  ~SweepArea() override = default;

  /// Adds an element.
  virtual void Insert(const StreamElement& e) = 0;

  /// Removes all elements whose validity ended at or before `t`.
  /// Returns the number of removed elements.
  virtual size_t Expire(Timestamp t) = 0;

  /// Enumerates join candidates for `probe` (all stored elements for the
  /// list implementation, same-key elements for the hash implementation).
  /// Returns the number of candidates examined (the work unit of the cost
  /// model).
  virtual size_t Probe(const StreamElement& probe,
                       const std::function<void(const StreamElement&)>& fn) = 0;

  /// Number of stored elements.
  virtual size_t Size() const = 0;

  /// Estimated memory footprint in bytes.
  virtual size_t MemoryBytes() const = 0;

  /// "list" or "hash".
  virtual std::string ImplementationType() const = 0;

  /// Defines the module-level metadata items (state size, memory usage,
  /// implementation type) on this provider.
  void RegisterModuleMetadata();

 protected:
  explicit SweepArea(std::string label) : MetadataProvider(std::move(label)) {}
};

/// \brief List-based sweep area: ordered by validity end for O(1) expiry;
/// probing scans every stored element (nested-loops join).
class ListSweepArea final : public SweepArea {
 public:
  explicit ListSweepArea(std::string label) : SweepArea(std::move(label)) {}

  void Insert(const StreamElement& e) override;
  size_t Expire(Timestamp t) override;
  size_t Probe(const StreamElement& probe,
               const std::function<void(const StreamElement&)>& fn) override;
  size_t Size() const override { return elements_.size(); }
  size_t MemoryBytes() const override { return bytes_; }
  std::string ImplementationType() const override { return "list"; }

 private:
  std::multimap<Timestamp, StreamElement> elements_;  // keyed by validity_end
  size_t bytes_ = 0;
};

/// \brief Hash-based sweep area for equi-joins: probing only examines
/// elements with a matching key.
class HashSweepArea final : public SweepArea {
 public:
  HashSweepArea(std::string label, KeyExtractor key)
      : SweepArea(std::move(label)), key_(std::move(key)) {}

  void Insert(const StreamElement& e) override;
  size_t Expire(Timestamp t) override;
  size_t Probe(const StreamElement& probe,
               const std::function<void(const StreamElement&)>& fn) override;
  size_t Size() const override { return table_.size(); }
  size_t MemoryBytes() const override { return bytes_; }
  std::string ImplementationType() const override { return "hash"; }

  /// The key extractor applied to *probing* elements must be supplied by the
  /// join (left probes right and vice versa).
  void set_probe_key(KeyExtractor key) { probe_key_ = std::move(key); }

 private:
  struct Entry {
    uint64_t id;
    StreamElement element;
  };

  KeyExtractor key_;        // key of stored elements
  KeyExtractor probe_key_;  // key of probing elements (defaults to key_)
  std::unordered_multimap<int64_t, Entry> table_;
  std::multimap<Timestamp, std::pair<int64_t, uint64_t>> expiry_;  // t -> (key, id)
  uint64_t next_id_ = 0;
  size_t bytes_ = 0;
};

}  // namespace pipes
