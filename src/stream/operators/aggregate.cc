#include "stream/operators/aggregate.h"

#include <algorithm>

namespace pipes {

const char* AggKindToString(AggKind k) {
  switch (k) {
    case AggKind::kCount:
      return "count";
    case AggKind::kSum:
      return "sum";
    case AggKind::kAvg:
      return "avg";
    case AggKind::kMin:
      return "min";
    case AggKind::kMax:
      return "max";
  }
  return "unknown";
}

TumblingAggregateOperator::TumblingAggregateOperator(std::string label,
                                                     Duration window,
                                                     AggKind kind,
                                                     size_t column)
    : OperatorNode(std::move(label)),
      window_(window),
      kind_(kind),
      column_(column),
      schema_({Field{"window_start", DataType::kInt64},
               Field{AggKindToString(kind), DataType::kDouble}}) {}

double TumblingAggregateOperator::Current() const {
  switch (kind_) {
    case AggKind::kCount:
      return static_cast<double>(count_);
    case AggKind::kSum:
      return sum_;
    case AggKind::kAvg:
      return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
    case AggKind::kMin:
      return min_;
    case AggKind::kMax:
      return max_;
  }
  return 0.0;
}

void TumblingAggregateOperator::EmitWindow() {
  StreamElement out(
      Tuple({Value(static_cast<int64_t>(window_start_)), Value(Current())}),
      window_start_ + window_, window_start_ + 2 * window_);
  Emit(out);
  open_ = false;
  count_ = 0;
  sum_ = 0.0;
}

void TumblingAggregateOperator::ProcessElement(const StreamElement& e, size_t) {
  AddWork(1.0);
  Timestamp start = e.timestamp - (e.timestamp % window_);
  if (open_ && start != window_start_) {
    EmitWindow();
  }
  if (!open_) {
    open_ = true;
    window_start_ = start;
    count_ = 0;
    sum_ = 0.0;
    min_ = e.tuple.DoubleAt(column_);
    max_ = min_;
  }
  double v = e.tuple.DoubleAt(column_);
  ++count_;
  sum_ += v;
  min_ = std::min(min_, v);
  max_ = std::max(max_, v);
}

}  // namespace pipes
