#include "stream/operators/window.h"

#include "metadata/descriptor.h"
#include "metadata/keys.h"

namespace pipes {

const Schema& TimeWindowOperator::output_schema() const {
  static const Schema kEmpty;
  if (!upstreams().empty()) return upstreams()[0]->output_schema();
  return kEmpty;
}

void TimeWindowOperator::set_window_size(Duration w) {
  window_size_.store(w, std::memory_order_relaxed);
  FireMetadataEvent(keys::kWindowSize);
}

void TimeWindowOperator::RegisterStandardMetadata() {
  OperatorNode::RegisterStandardMetadata();
  metadata_registry().Define(
      MetadataDescriptor::OnDemand(keys::kWindowSize)
          .WithEvaluator([this](EvalContext&) -> MetadataValue {
            return ToSeconds(window_size());
          })
          .WithDescription(
              "window size [s] (on-demand; fires an event on change)"));
}

void TimeWindowOperator::ProcessElement(const StreamElement& e, size_t) {
  StreamElement out = e;
  out.validity_end = e.timestamp + window_size();
  AddWork(1.0);
  Emit(out);
}

}  // namespace pipes
