#include "stream/operators/join.h"

#include <cassert>

#include "metadata/descriptor.h"
#include "metadata/keys.h"

namespace pipes {

JoinPredicate EquiJoinPredicate(size_t left_column, size_t right_column) {
  return [left_column, right_column](const Tuple& l, const Tuple& r) {
    return l.IntAt(left_column) == r.IntAt(right_column);
  };
}

SlidingWindowJoin::SlidingWindowJoin(std::string label, JoinPredicate predicate,
                                     double predicate_cost)
    : OperatorNode(std::move(label)),
      impl_(Impl::kNestedLoops),
      predicate_(std::move(predicate)),
      predicate_cost_(predicate_cost) {
  areas_[0] = std::make_unique<ListSweepArea>(this->label() + "/left_state");
  areas_[1] = std::make_unique<ListSweepArea>(this->label() + "/right_state");
  for (int i = 0; i < 2; ++i) areas_[i]->RegisterModuleMetadata();
  RegisterModule("left_state", areas_[0].get());
  RegisterModule("right_state", areas_[1].get());
}

SlidingWindowJoin::SlidingWindowJoin(std::string label, size_t left_column,
                                     size_t right_column, double predicate_cost)
    : OperatorNode(std::move(label)),
      impl_(Impl::kHash),
      predicate_(EquiJoinPredicate(left_column, right_column)),
      predicate_cost_(predicate_cost) {
  auto left = std::make_unique<HashSweepArea>(this->label() + "/left_state",
                                              KeyColumn(left_column));
  left->set_probe_key(KeyColumn(right_column));
  auto right = std::make_unique<HashSweepArea>(this->label() + "/right_state",
                                               KeyColumn(right_column));
  right->set_probe_key(KeyColumn(left_column));
  areas_[0] = std::move(left);
  areas_[1] = std::move(right);
  for (int i = 0; i < 2; ++i) areas_[i]->RegisterModuleMetadata();
  RegisterModule("left_state", areas_[0].get());
  RegisterModule("right_state", areas_[1].get());
}

SlidingWindowJoin::~SlidingWindowJoin() = default;

const Schema& SlidingWindowJoin::output_schema() const {
  if (!schema_cached_ && upstreams().size() == 2) {
    cached_schema_ = Schema::Concat(upstreams()[0]->output_schema(),
                                    upstreams()[1]->output_schema());
    schema_cached_ = true;
  }
  return cached_schema_;
}

size_t SlidingWindowJoin::StateCount() const {
  size_t n = 0;
  for (const auto& area : areas_) {
    SharedLock lock(area->state_mutex());
    n += area->Size();
  }
  return n;
}

size_t SlidingWindowJoin::StateMemoryBytes() const {
  size_t n = 0;
  for (const auto& area : areas_) {
    SharedLock lock(area->state_mutex());
    n += area->MemoryBytes();
  }
  return n;
}

std::string SlidingWindowJoin::ImplementationType() const {
  return impl_ == Impl::kHash ? "hash" : "nested-loops";
}

void SlidingWindowJoin::RegisterStandardMetadata() {
  OperatorNode::RegisterStandardMetadata();
  auto& reg = metadata_registry();

  // Figure 3's intra-node dependency: the cost of the join predicate.
  reg.Define(MetadataDescriptor::Static(keys::kPredicateCost, predicate_cost_)
                 .WithDescription(
                     "CPU cost per candidate pair examined (static)"));

  // Redefinition (paper §4.4.2) + module metadata (§4.5): the join's memory
  // usage is derived from the memory usage of its sweep-area modules, as in
  // Figure 3, instead of the OperatorNode default.
  Status st = reg.Redefine(
      MetadataDescriptor::OnDemand(keys::kMemoryUsage)
          .DependsOnModule("left_state", keys::kMemoryUsage)
          .DependsOnModule("right_state", keys::kMemoryUsage)
          .WithEvaluator([](EvalContext& ctx) -> MetadataValue {
            return static_cast<int64_t>(ctx.Dep(0).AsInt() +
                                        ctx.Dep(1).AsInt());
          })
          .WithDescription(
              "measured memory usage, derived from the sweep-area modules "
              "[bytes] (on-demand)"));
  assert(st.ok());
  (void)st;
}

void SlidingWindowJoin::ProcessElement(const StreamElement& e,
                                       size_t input_index) {
  assert(input_index < 2);
  size_t other = 1 - input_index;

  // The sweep areas are metadata modules with their own state locks: their
  // size/memory evaluators run concurrently on scheduler workers, so every
  // mutation is taken under the module's lock (write side of §4.2).
  // Purge both areas up to the new element's timestamp (time moves forward).
  {
    ExclusiveLock lock(areas_[0]->state_mutex());
    areas_[0]->Expire(e.timestamp);
  }
  {
    ExclusiveLock lock(areas_[1]->state_mutex());
    areas_[1]->Expire(e.timestamp);
  }
  {
    ExclusiveLock lock(areas_[input_index]->state_mutex());
    areas_[input_index]->Insert(e);
  }

  // Probing is read-only: a shared hold lets metadata evaluators sample the
  // probed area concurrently. Matches are emitted while it is held; the
  // downstream locks taken by Emit are sibling instances, never this one.
  SharedLock probe_lock(areas_[other]->state_mutex());
  size_t examined = areas_[other]->Probe(e, [&](const StreamElement& cand) {
    const Tuple& left = input_index == 0 ? e.tuple : cand.tuple;
    const Tuple& right = input_index == 0 ? cand.tuple : e.tuple;
    if (predicate_(left, right)) {
      matches_.fetch_add(1, std::memory_order_relaxed);
      match_probe_.Increment();
      StreamElement out(Tuple::Concat(left, right), e.timestamp,
                        std::min(e.validity_end, cand.validity_end));
      Emit(out);
    }
  });

  examined_probe_.Increment(examined);

  // Work: one insert + `examined` predicate evaluations.
  AddWork(1.0 + static_cast<double>(examined) * predicate_cost_);
}

}  // namespace pipes
