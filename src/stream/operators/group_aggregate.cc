#include "stream/operators/group_aggregate.h"

#include <algorithm>
#include <map>

namespace pipes {

GroupedAggregateOperator::GroupedAggregateOperator(std::string label,
                                                   Duration window,
                                                   AggKind kind,
                                                   size_t key_column,
                                                   size_t value_column)
    : OperatorNode(std::move(label)),
      window_(window),
      kind_(kind),
      key_column_(key_column),
      value_column_(value_column),
      schema_({Field{"window_start", DataType::kInt64},
               Field{"key", DataType::kInt64},
               Field{AggKindToString(kind), DataType::kDouble}}) {}

double GroupedAggregateOperator::Finish(const Acc& acc) const {
  switch (kind_) {
    case AggKind::kCount:
      return static_cast<double>(acc.count);
    case AggKind::kSum:
      return acc.sum;
    case AggKind::kAvg:
      return acc.count == 0 ? 0.0 : acc.sum / static_cast<double>(acc.count);
    case AggKind::kMin:
      return acc.min;
    case AggKind::kMax:
      return acc.max;
  }
  return 0.0;
}

void GroupedAggregateOperator::EmitWindow() {
  // Deterministic emission order (by key) for reproducible tests.
  std::map<int64_t, Acc> ordered(groups_.begin(), groups_.end());
  for (const auto& [key, acc] : ordered) {
    StreamElement out(
        Tuple({Value(static_cast<int64_t>(window_start_)), Value(key),
               Value(Finish(acc))}),
        window_start_ + window_, window_start_ + 2 * window_);
    Emit(out);
  }
  groups_.clear();
  open_ = false;
}

void GroupedAggregateOperator::ProcessElement(const StreamElement& e, size_t) {
  AddWork(1.0);
  Timestamp start = e.timestamp - (e.timestamp % window_);
  if (open_ && start != window_start_) {
    EmitWindow();
  }
  if (!open_) {
    open_ = true;
    window_start_ = start;
  }
  int64_t key = e.tuple.IntAt(key_column_);
  double v = e.tuple.DoubleAt(value_column_);
  auto [it, inserted] = groups_.try_emplace(key);
  Acc& acc = it->second;
  if (inserted) {
    acc.min = v;
    acc.max = v;
  }
  ++acc.count;
  acc.sum += v;
  acc.min = std::min(acc.min, v);
  acc.max = std::max(acc.max, v);
}

}  // namespace pipes
