/// \file group_aggregate.h
/// \brief Keyed tumbling-window aggregation.
///
/// Like TumblingAggregateOperator but grouped by an integer key column:
/// per closed window one element per observed group,
/// (window_start:int64, key:int64, agg:double). The per-window hash table is
/// the operator state and shows up in the state/memory metadata — grouped
/// aggregates are the classic consumers of data-distribution metadata
/// (skewed keys -> large state).

#pragma once

#include <unordered_map>

#include "stream/node.h"
#include "stream/operators/aggregate.h"

namespace pipes {

class GroupedAggregateOperator final : public OperatorNode {
 public:
  /// Aggregates `value_column` grouped by `key_column` over `window`
  /// microseconds.
  GroupedAggregateOperator(std::string label, Duration window, AggKind kind,
                           size_t key_column = 0, size_t value_column = 1);

  size_t max_inputs() const override { return 1; }
  const Schema& output_schema() const override { return schema_; }
  std::string ImplementationType() const override {
    return std::string("grouped-tumbling-") + AggKindToString(kind_);
  }

  size_t StateCount() const override { return groups_.size(); }
  size_t StateMemoryBytes() const override { return groups_.size() * 64; }

  Duration window() const { return window_; }

  /// Groups in the currently open window (for tests).
  size_t open_group_count() const { return groups_.size(); }

 protected:
  void ProcessElement(const StreamElement& e, size_t) override;

 private:
  struct Acc {
    uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
  };

  double Finish(const Acc& acc) const;
  void EmitWindow();

  Duration window_;
  AggKind kind_;
  size_t key_column_;
  size_t value_column_;
  Schema schema_;

  bool open_ = false;
  Timestamp window_start_ = 0;
  std::unordered_map<int64_t, Acc> groups_;
};

}  // namespace pipes
