/// \file join.h
/// \brief The time-based sliding window join (paper §2.5, Figure 3).
///
/// A symmetric join over the validity windows of its two inputs. Its state
/// lives in two exchangeable SweepArea modules; the join's memory-usage
/// metadata item is *redefined* to be derived from the modules' items
/// (paper §4.4.2 + §4.5), exactly as sketched in Figure 3.

#pragma once

#include <memory>
#include <string>

#include "stream/node.h"
#include "stream/operators/sweep_area.h"

namespace pipes {

/// Join predicate over (left tuple, right tuple).
using JoinPredicate = std::function<bool(const Tuple&, const Tuple&)>;

/// An equi-join predicate comparing integer columns.
JoinPredicate EquiJoinPredicate(size_t left_column, size_t right_column);

/// \brief Symmetric sliding-window join.
///
/// On arrival of an element on one input: expired elements are purged from
/// the opposite sweep area, the element is inserted into its own area, and
/// the opposite area is probed for matches. Results carry the intersection
/// of the validity intervals.
class SlidingWindowJoin final : public OperatorNode {
 public:
  enum class Impl { kNestedLoops, kHash };

  /// Nested-loops join with an arbitrary predicate.
  SlidingWindowJoin(std::string label, JoinPredicate predicate,
                    double predicate_cost = 1.0);

  /// Hash join for equi-joins on integer columns.
  SlidingWindowJoin(std::string label, size_t left_column, size_t right_column,
                    double predicate_cost = 1.0);

  ~SlidingWindowJoin() override;

  size_t max_inputs() const override { return 2; }
  const Schema& output_schema() const override;

  size_t StateCount() const override;
  size_t StateMemoryBytes() const override;
  std::string ImplementationType() const override;

  void RegisterStandardMetadata() override;

  /// The join's sweep areas (module providers), for tests and the profiler.
  SweepArea& left_area() { return *areas_[0]; }
  SweepArea& right_area() { return *areas_[1]; }

  /// CPU cost charged per examined candidate (the predicate cost of
  /// Figure 3's intra-node dependency).
  double predicate_cost() const { return predicate_cost_; }

  uint64_t match_count() const {
    return matches_.load(std::memory_order_relaxed);
  }

  /// Probe counting candidate pairs examined (for measured match
  /// selectivity and CPU-cost validation).
  CounterProbe& examined_probe() { return examined_probe_; }

  /// Probe counting emitted matches.
  CounterProbe& match_probe() { return match_probe_; }

 protected:
  void ProcessElement(const StreamElement& e, size_t input_index) override;

 private:
  Impl impl_;
  JoinPredicate predicate_;
  double predicate_cost_;
  std::unique_ptr<SweepArea> areas_[2];
  std::atomic<uint64_t> matches_{0};
  CounterProbe examined_probe_;
  CounterProbe match_probe_;
  mutable Schema cached_schema_;
  mutable bool schema_cached_ = false;
};

}  // namespace pipes
