/// \file count_window.h
/// \brief Count-based sliding window operator.
///
/// Alongside time-based windows, PIPES supports count-based windows: an
/// element stays valid until `n` further elements have arrived. In a push
/// pipeline that end is only known when the (i+n)-th element arrives, so
/// this operator emits elements delayed by `n` arrivals with
/// validity [own timestamp, timestamp of the (i+n)-th element). The buffer
/// of at most `n` pending elements is the operator state (visible through
/// the state-size and memory-usage metadata).

#pragma once

#include <deque>

#include "stream/node.h"

namespace pipes {

class CountWindowOperator final : public OperatorNode {
 public:
  /// Window of the last `n` elements (n >= 1).
  CountWindowOperator(std::string label, size_t n)
      : OperatorNode(std::move(label)), n_(n) {}

  size_t max_inputs() const override { return 1; }
  const Schema& output_schema() const override;
  std::string ImplementationType() const override { return "count-window"; }

  size_t StateCount() const override { return pending_.size(); }
  size_t StateMemoryBytes() const override { return pending_bytes_; }

  size_t window_count() const { return n_; }

  /// Emits all pending elements with unbounded validity — for end-of-stream
  /// draining in tests and batch scenarios.
  void Flush();

 protected:
  void ProcessElement(const StreamElement& e, size_t) override;

 private:
  size_t n_;
  std::deque<StreamElement> pending_;
  size_t pending_bytes_ = 0;
};

}  // namespace pipes
