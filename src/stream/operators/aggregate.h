/// \file aggregate.h
/// \brief Tumbling-window aggregation over a numeric column.

#pragma once

#include <string>

#include "stream/node.h"

namespace pipes {

/// Supported aggregate functions.
enum class AggKind { kCount, kSum, kAvg, kMin, kMax };

const char* AggKindToString(AggKind k);

/// \brief Partitions application time into fixed windows and emits one
/// aggregate element per closed window: (window_start:int64, agg:double).
///
/// A window closes when the first element with a timestamp at or past its
/// end arrives (streams are processed in timestamp order).
class TumblingAggregateOperator final : public OperatorNode {
 public:
  /// Aggregates `column` of the input tuples over `window` microseconds.
  /// For kCount, `column` is ignored.
  TumblingAggregateOperator(std::string label, Duration window, AggKind kind,
                            size_t column = 0);

  size_t max_inputs() const override { return 1; }
  const Schema& output_schema() const override { return schema_; }
  std::string ImplementationType() const override {
    return std::string("tumbling-") + AggKindToString(kind_);
  }

  size_t StateCount() const override { return open_ ? 1 : 0; }
  size_t StateMemoryBytes() const override { return open_ ? 48 : 0; }

  Duration window() const { return window_; }

 protected:
  void ProcessElement(const StreamElement& e, size_t) override;

 private:
  void EmitWindow();
  double Current() const;

  Duration window_;
  AggKind kind_;
  size_t column_;
  Schema schema_;

  bool open_ = false;
  Timestamp window_start_ = 0;
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace pipes
