#include "stream/operators/basic.h"

#include "metadata/descriptor.h"

namespace pipes {

namespace {
const Schema& UpstreamSchemaOrEmpty(const Node& node) {
  static const Schema kEmpty;
  if (!node.upstreams().empty()) return node.upstreams()[0]->output_schema();
  return kEmpty;
}
}  // namespace

const Schema& FilterOperator::output_schema() const {
  return UpstreamSchemaOrEmpty(*this);
}

void FilterOperator::ProcessElement(const StreamElement& e, size_t) {
  AddWork(work_cost_);
  if (predicate_(e.tuple)) Emit(e);
}

void MapOperator::ProcessElement(const StreamElement& e, size_t) {
  AddWork(1.0);
  StreamElement out(fn_(e.tuple), e.timestamp, e.validity_end);
  Emit(out);
}

const Schema& UnionOperator::output_schema() const {
  return UpstreamSchemaOrEmpty(*this);
}

void UnionOperator::ProcessElement(const StreamElement& e, size_t) {
  AddWork(1.0);
  Emit(e);
}

const MetadataKey RandomDropOperator::kDropProbabilityKey = "drop_probability";

const Schema& RandomDropOperator::output_schema() const {
  return UpstreamSchemaOrEmpty(*this);
}

void RandomDropOperator::set_drop_probability(double p) {
  drop_probability_.store(p, std::memory_order_relaxed);
  FireMetadataEvent(kDropProbabilityKey);
}

void RandomDropOperator::RegisterStandardMetadata() {
  OperatorNode::RegisterStandardMetadata();
  metadata_registry().Define(
      MetadataDescriptor::OnDemand(kDropProbabilityKey)
          .WithEvaluator([this](EvalContext&) -> MetadataValue {
            return drop_probability();
          })
          .WithDescription("probability of dropping an element (on-demand)"));
}

void RandomDropOperator::ProcessElement(const StreamElement& e, size_t) {
  AddWork(0.1);
  if (rng_.Bernoulli(drop_probability())) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Emit(e);
}

}  // namespace pipes
