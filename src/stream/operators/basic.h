/// \file basic.h
/// \brief Stateless operators: filter, map, union, random drop.

#pragma once

#include <atomic>
#include <functional>

#include "common/rng.h"
#include "stream/node.h"

namespace pipes {

/// \brief Emits only elements whose tuple satisfies a predicate.
class FilterOperator final : public OperatorNode {
 public:
  using Predicate = std::function<bool(const Tuple&)>;

  /// `work_cost` is the CPU work charged per processed element (models
  /// predicates of different expense; used by the scheduling experiments).
  FilterOperator(std::string label, Predicate predicate,
                 double work_cost = 1.0)
      : OperatorNode(std::move(label)),
        predicate_(std::move(predicate)),
        work_cost_(work_cost) {}

  size_t max_inputs() const override { return 1; }
  const Schema& output_schema() const override;
  std::string ImplementationType() const override { return "filter"; }

  double work_cost() const { return work_cost_; }

 protected:
  void ProcessElement(const StreamElement& e, size_t) override;

 private:
  Predicate predicate_;
  double work_cost_;
};

/// \brief Applies a tuple transformation with an explicit output schema.
class MapOperator final : public OperatorNode {
 public:
  using MapFn = std::function<Tuple(const Tuple&)>;

  MapOperator(std::string label, Schema output_schema, MapFn fn)
      : OperatorNode(std::move(label)),
        schema_(std::move(output_schema)),
        fn_(std::move(fn)) {}

  size_t max_inputs() const override { return 1; }
  const Schema& output_schema() const override { return schema_; }
  std::string ImplementationType() const override { return "map"; }

 protected:
  void ProcessElement(const StreamElement& e, size_t) override;

 private:
  Schema schema_;
  MapFn fn_;
};

/// \brief Merges any number of same-schema inputs into one stream.
class UnionOperator final : public OperatorNode {
 public:
  explicit UnionOperator(std::string label) : OperatorNode(std::move(label)) {}

  size_t max_inputs() const override { return kUnbounded; }
  const Schema& output_schema() const override;
  std::string ImplementationType() const override { return "union"; }

 protected:
  void ProcessElement(const StreamElement& e, size_t) override;
};

/// \brief Randomly drops elements with a runtime-adjustable probability —
/// the load-shedding operator (paper §1 motivation 2).
class RandomDropOperator final : public OperatorNode {
 public:
  /// The key of the drop-probability metadata item.
  static const MetadataKey kDropProbabilityKey;

  RandomDropOperator(std::string label, double drop_probability = 0.0,
                     uint64_t seed = 7)
      : OperatorNode(std::move(label)),
        drop_probability_(drop_probability),
        rng_(seed) {}

  size_t max_inputs() const override { return 1; }
  const Schema& output_schema() const override;
  std::string ImplementationType() const override { return "random-drop"; }

  double drop_probability() const {
    return drop_probability_.load(std::memory_order_relaxed);
  }

  /// Adjusts the shedding rate; fires the drop-probability event.
  void set_drop_probability(double p);

  void RegisterStandardMetadata() override;

  uint64_t dropped_count() const {
    return dropped_.load(std::memory_order_relaxed);
  }

 protected:
  void ProcessElement(const StreamElement& e, size_t) override;

 private:
  std::atomic<double> drop_probability_;
  std::atomic<uint64_t> dropped_{0};
  Rng rng_;
};

}  // namespace pipes
