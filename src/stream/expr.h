/// \file expr.h
/// \brief A small typed expression language over tuples.
///
/// Filters, maps, and join predicates in declarative form: an immutable AST
/// of column references, constants, arithmetic, comparisons, and boolean
/// connectives, with
///  - schema validation (column bounds + type rules),
///  - interpretation over tuples, and
///  - a per-evaluation cost estimate that feeds the predicate-cost metadata
///    item (Figure 3's intra-node dependency gets a principled source).
///
/// \code
///   using namespace pipes::expr;
///   ExprPtr e = Gt(Col(1), Const(0.5));              // value > 0.5
///   auto pred = CompilePredicate(e, schema).value(); // -> FilterOperator
/// \endcode

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "stream/operators/basic.h"
#include "stream/tuple.h"

namespace pipes::expr {

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// AST node kinds.
enum class ExprKind {
  kColumn,
  kConst,
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
  kNot,
};

/// \brief Immutable expression tree node.
class Expr {
 public:
  ExprKind kind() const { return kind_; }
  size_t column_index() const { return column_; }
  const Value& constant() const { return constant_; }
  const std::vector<ExprPtr>& children() const { return children_; }

  /// Evaluates over `t`. Behavior on type mismatches follows the numeric
  /// coercions of ValueAsDouble; Validate() first for strictness.
  Value Eval(const Tuple& t) const;

  /// Checks column bounds and type rules against `schema`; returns the
  /// result type on success.
  Result<DataType> Validate(const Schema& schema) const;

  /// Estimated cost per evaluation (1 per AST node; comparisons on strings
  /// cost 4). Feeds the predicate-cost metadata item.
  double Cost() const;

  /// Human-readable rendering, e.g. "(col1 > 0.5)".
  std::string ToString() const;

  // Internal: use the factory functions below.
  Expr(ExprKind kind, size_t column, Value constant,
       std::vector<ExprPtr> children)
      : kind_(kind),
        column_(column),
        constant_(std::move(constant)),
        children_(std::move(children)) {}

 private:
  ExprKind kind_;
  size_t column_;
  Value constant_;
  std::vector<ExprPtr> children_;
};

/// \name Factories
///@{
ExprPtr Col(size_t index);
ExprPtr Const(int64_t v);
ExprPtr Const(double v);
ExprPtr Const(bool v);
ExprPtr Const(const char* v);
ExprPtr Const(std::string v);

ExprPtr Add(ExprPtr a, ExprPtr b);
ExprPtr Sub(ExprPtr a, ExprPtr b);
ExprPtr Mul(ExprPtr a, ExprPtr b);
ExprPtr Div(ExprPtr a, ExprPtr b);
ExprPtr Mod(ExprPtr a, ExprPtr b);

ExprPtr Eq(ExprPtr a, ExprPtr b);
ExprPtr Ne(ExprPtr a, ExprPtr b);
ExprPtr Lt(ExprPtr a, ExprPtr b);
ExprPtr Le(ExprPtr a, ExprPtr b);
ExprPtr Gt(ExprPtr a, ExprPtr b);
ExprPtr Ge(ExprPtr a, ExprPtr b);

ExprPtr And(ExprPtr a, ExprPtr b);
ExprPtr Or(ExprPtr a, ExprPtr b);
ExprPtr Not(ExprPtr a);
///@}

/// \brief Compiles a boolean expression into a filter predicate (validated
/// against `schema`).
Result<FilterOperator::Predicate> CompilePredicate(const ExprPtr& e,
                                                   const Schema& schema);

/// One output column of a projection.
struct Projection {
  std::string name;
  ExprPtr value;
};

/// \brief Compiles a projection list into (output schema, map function).
Result<std::pair<Schema, MapOperator::MapFn>> CompileProjection(
    const std::vector<Projection>& projections, const Schema& schema);

}  // namespace pipes::expr
