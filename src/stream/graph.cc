#include "stream/graph.h"

#include <algorithm>
#include <cassert>
#include <deque>

namespace pipes {

QueryGraph::QueryGraph(TaskScheduler& scheduler, Duration metadata_period)
    : scheduler_(scheduler),
      metadata_period_(metadata_period),
      metadata_manager_(scheduler) {}

QueryGraph::~QueryGraph() {
  // Nodes are handed out as shared_ptrs, so a caller may still hold one
  // when the graph (and the MetadataManager it owns) dies. Detach those
  // survivors: their eventual ~MetadataProvider must not reach into the
  // dead manager. Graph-owned nodes keep the manager attached — they are
  // destroyed via nodes_ before metadata_manager_ (member order), so the
  // durability teardown hook still sees a live manager for them.
  ExclusiveLock lock(graph_mu_);
  for (auto& node : nodes_) {
    if (node.use_count() > 1) node->AttachMetadataManager(nullptr);
  }
}

void QueryGraph::RegisterNode(const std::shared_ptr<Node>& node) {
  ExclusiveLock lock(graph_mu_);
  node->graph_ = this;
  node->set_metadata_period(metadata_period_);
  node->AttachMetadataManager(&metadata_manager_);
  node->RegisterStandardMetadata();
  nodes_.push_back(node);
}

Status QueryGraph::Connect(Node& from, Node& to) {
  ExclusiveLock lock(graph_mu_);
  if (from.graph() != this || to.graph() != this) {
    return Status::InvalidArgument("nodes belong to a different graph");
  }
  if (from.kind() == Node::Kind::kSink) {
    return Status::InvalidArgument("cannot connect from a sink: " +
                                   from.label());
  }
  if (to.kind() == Node::Kind::kSource) {
    return Status::InvalidArgument("cannot connect into a source: " +
                                   to.label());
  }
  if (to.max_inputs() != Node::kUnbounded &&
      to.upstreams().size() >= to.max_inputs()) {
    return Status::FailedPrecondition("all input slots of '" + to.label() +
                                      "' are connected");
  }
  if (ReachesDownstream(&to, &from)) {
    return Status::CycleDetected("connecting '" + from.label() + "' -> '" +
                                 to.label() + "' would create a cycle");
  }
  size_t input_index = to.upstreams().size();
  to.AddUpstream(&from);
  from.AddDownstreamEdge(&to, input_index);
  return Status::OK();
}

void QueryGraph::CollectUpstream(Node* start, std::unordered_set<Node*>* out) {
  std::deque<Node*> frontier{start};
  while (!frontier.empty()) {
    Node* n = frontier.front();
    frontier.pop_front();
    if (!out->insert(n).second) continue;
    for (Node* up : n->upstreams()) frontier.push_back(up);
  }
}

bool QueryGraph::ReachesDownstream(Node* start, Node* target) {
  std::unordered_set<Node*> visited;
  std::deque<Node*> frontier{start};
  while (!frontier.empty()) {
    Node* n = frontier.front();
    frontier.pop_front();
    if (n == target) return true;
    if (!visited.insert(n).second) continue;
    for (const Node::Edge& e : n->downstream_edges()) frontier.push_back(e.node);
  }
  return false;
}

Result<QueryId> QueryGraph::RegisterQuery(
    const std::shared_ptr<SinkNode>& sink) {
  ExclusiveLock lock(graph_mu_);
  if (sink->graph() != this) {
    return Status::InvalidArgument("sink belongs to a different graph");
  }
  std::unordered_set<Node*> closure;
  CollectUpstream(sink.get(), &closure);
  QueryInfo info;
  info.sink = sink;
  info.nodes.assign(closure.begin(), closure.end());
  for (Node* n : info.nodes) {
    n->use_count_.fetch_add(1, std::memory_order_relaxed);
  }
  QueryId id = next_query_id_++;
  queries_.emplace(id, std::move(info));
  return id;
}

Status QueryGraph::RemoveQuery(QueryId id) {
  ExclusiveLock lock(graph_mu_);
  auto it = queries_.find(id);
  if (it == queries_.end()) {
    return Status::NotFound("unknown query id " + std::to_string(id));
  }

  // Determine which nodes would drop to zero uses.
  std::vector<Node*> to_remove;
  for (Node* n : it->second.nodes) {
    if (n->use_count() == 1) to_remove.push_back(n);
  }
  // Refuse if any of them still provides included metadata: a consumer holds
  // live subscriptions into the node.
  for (Node* n : to_remove) {
    if (n->metadata_registry().included_count() > 0) {
      return Status::FailedPrecondition(
          "node '" + n->label() +
          "' still provides included metadata items; unsubscribe first");
    }
  }

  std::unordered_set<Node*> removed(to_remove.begin(), to_remove.end());
  for (Node* n : it->second.nodes) {
    n->use_count_.fetch_sub(1, std::memory_order_relaxed);
  }
  // Detach edges from surviving nodes into removed nodes.
  for (const auto& node : nodes_) {
    if (removed.count(node.get()) > 0) continue;
    auto& edges = node->downstream_edges_;
    edges.erase(std::remove_if(edges.begin(), edges.end(),
                               [&](const Node::Edge& e) {
                                 return removed.count(e.node) > 0;
                               }),
                edges.end());
  }
  nodes_.erase(std::remove_if(nodes_.begin(), nodes_.end(),
                              [&](const std::shared_ptr<Node>& n) {
                                return removed.count(n.get()) > 0;
                              }),
               nodes_.end());
  queries_.erase(it);
  return Status::OK();
}

size_t QueryGraph::query_count() const {
  SharedLock lock(graph_mu_);
  return queries_.size();
}

std::vector<std::shared_ptr<Node>> QueryGraph::nodes() const {
  SharedLock lock(graph_mu_);
  return nodes_;
}

size_t QueryGraph::node_count() const {
  SharedLock lock(graph_mu_);
  return nodes_.size();
}

}  // namespace pipes
