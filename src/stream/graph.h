/// \file graph.h
/// \brief The query graph: shared operator DAG executing all continuous
/// queries (paper Figure 1), with subquery sharing and query management.

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <unordered_set>
#include <vector>

#include "common/reentrant_shared_mutex.h"
#include "common/scheduler.h"
#include "common/status.h"
#include "metadata/manager.h"
#include "stream/node.h"

namespace pipes {

/// Identifies a registered continuous query.
using QueryId = uint64_t;

/// \brief Owns the nodes of the shared operator graph and the per-graph
/// MetadataManager; tracks which nodes each registered query uses
/// (subquery sharing).
///
/// Thread safety: structural operations (AddNode/Connect/RegisterQuery/
/// RemoveQuery) take the graph lock exclusively; element processing and
/// metadata access only take node-level locks.
class QueryGraph {
 public:
  /// `scheduler` drives periodic metadata updates and synthetic sources.
  /// `metadata_period` is the default window of periodic metadata items.
  explicit QueryGraph(TaskScheduler& scheduler,
                      Duration metadata_period = kMicrosPerSecond);
  ~QueryGraph();

  QueryGraph(const QueryGraph&) = delete;
  QueryGraph& operator=(const QueryGraph&) = delete;

  /// The metadata coordinator of this graph.
  MetadataManager& metadata_manager() { return metadata_manager_; }

  /// Graph-level lock of the three-level locking scheme (paper §4.2).
  ReentrantSharedMutex& graph_mutex() PIPES_RETURN_CAPABILITY(graph_mu_) {
    return graph_mu_;
  }

  /// Constructs a node of type `T`, attaches it to this graph (metadata
  /// manager, default period) and registers its standard metadata.
  template <typename T, typename... Args>
  std::shared_ptr<T> AddNode(Args&&... args) {
    auto node = std::make_shared<T>(std::forward<Args>(args)...);
    RegisterNode(node);
    return node;
  }

  /// Attaches an externally-constructed node.
  void RegisterNode(const std::shared_ptr<Node>& node);

  /// Wires `from`'s output to the next free input slot of `to`.
  /// Fails on kind mismatches, full inputs, unknown nodes, or cycles.
  Status Connect(Node& from, Node& to);

  /// \name Query management (subquery sharing)
  ///@{
  /// Registers the continuous query that ends in `sink`: every node reachable
  /// upstream from the sink gets its use count incremented.
  Result<QueryId> RegisterQuery(const std::shared_ptr<SinkNode>& sink);

  /// Unregisters a query. Nodes whose use count drops to zero are removed
  /// from the graph — unless they still provide included metadata items, in
  /// which case the call fails with FailedPrecondition and nothing changes.
  Status RemoveQuery(QueryId id);

  /// Number of currently registered queries.
  size_t query_count() const;
  ///@}

  /// Snapshot of all nodes.
  std::vector<std::shared_ptr<Node>> nodes() const;

  /// Number of nodes in the graph.
  size_t node_count() const;

  /// The default period for periodic metadata of newly added nodes.
  Duration metadata_period() const { return metadata_period_; }

  /// The scheduler driving this graph.
  TaskScheduler& scheduler() { return scheduler_; }

 private:
  /// Collects `start` and everything reachable upstream of it.
  static void CollectUpstream(Node* start,
                              std::unordered_set<Node*>* out);

  /// True if `target` is reachable downstream from `start`.
  static bool ReachesDownstream(Node* start, Node* target);

  TaskScheduler& scheduler_;
  Duration metadata_period_;       // pipes-analyze: unguarded(fixed at construction)
  MetadataManager metadata_manager_;  // pipes-analyze: unguarded(internally synchronized by its own locks)
  /// Outermost lock of the hierarchy: structural ops may take every other
  /// lock underneath (node teardown drops metadata subscriptions).
  mutable ReentrantSharedMutex graph_mu_{"QueryGraph::graph_mu",
                                         lockorder::kRankQueryGraph};

  std::vector<std::shared_ptr<Node>> nodes_ PIPES_GUARDED_BY(graph_mu_);
  struct QueryInfo {
    std::shared_ptr<SinkNode> sink;
    std::vector<Node*> nodes;  // upstream closure incl. sink
  };
  std::map<QueryId, QueryInfo> queries_ PIPES_GUARDED_BY(graph_mu_);
  QueryId next_query_id_ PIPES_GUARDED_BY(graph_mu_) = 1;
};

}  // namespace pipes
