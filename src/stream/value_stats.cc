#include "stream/value_stats.h"

#include <cmath>
#include <cstdio>
#include <memory>
#include <mutex>

#include "common/stats.h"
#include "metadata/descriptor.h"

namespace pipes {

const MetadataKey kValueDistributionEpoch = "value_distribution_epoch";

MetadataKey ValueQuantileKey(double q) {
  char buf[32];
  double pct = q * 100.0;
  if (std::abs(pct - std::round(pct)) < 1e-9) {
    std::snprintf(buf, sizeof(buf), "value_p%d",
                  static_cast<int>(std::lround(pct)));
  } else {
    std::snprintf(buf, sizeof(buf), "value_p%.1f", pct);
  }
  return buf;
}

Status RegisterValueQuantiles(Node& node, size_t column, double lo, double hi,
                              std::vector<double> quantiles, size_t buckets) {
  if (!(hi > lo) || buckets == 0) {
    return Status::InvalidArgument("invalid histogram range or bucket count");
  }
  if (quantiles.empty()) {
    return Status::InvalidArgument("no quantiles requested");
  }
  for (double q : quantiles) {
    if (q < 0.0 || q > 1.0) {
      return Status::InvalidArgument("quantile must be in [0, 1]");
    }
  }

  struct Sketch {
    std::mutex mu;
    Histogram live;
    Histogram snapshot;
    int observers = 0;

    Sketch(double lo, double hi, size_t buckets)
        : live(lo, hi, buckets), snapshot(lo, hi, buckets) {}
  };
  auto sketch = std::make_shared<Sketch>(lo, hi, buckets);
  Node* n = &node;

  // Hidden epoch item: snapshots and resets the shared histogram per window.
  PIPES_RETURN_NOT_OK(node.metadata_registry().Define(
      MetadataDescriptor::Periodic(kValueDistributionEpoch,
                                   node.metadata_period())
          .WithEvaluator([sketch](EvalContext& ctx) -> MetadataValue {
            std::lock_guard<std::mutex> lock(sketch->mu);
            if (ctx.elapsed() <= 0) {
              sketch->live.Reset();
              return MetadataValue::Null();
            }
            sketch->snapshot = sketch->live;
            sketch->live.Reset();
            return static_cast<int64_t>(ctx.eval_index());
          })
          .WithMonitoring(
              [n, sketch, column](MetadataProvider&) {
                {
                  std::lock_guard<std::mutex> lock(sketch->mu);
                  ++sketch->observers;
                  sketch->live.Reset();
                }
                n->AddEmitObserver(
                    "value_distribution",
                    [sketch, column](const StreamElement& e) {
                      if (column >= e.tuple.arity()) return;
                      std::lock_guard<std::mutex> lock(sketch->mu);
                      sketch->live.Add(e.tuple.DoubleAt(column));
                    });
              },
              [n, sketch](MetadataProvider&) {
                std::lock_guard<std::mutex> lock(sketch->mu);
                if (--sketch->observers == 0) {
                  n->RemoveEmitObserver("value_distribution");
                }
              })
          .WithDescription(
              "per-window value histogram epoch (periodic; shared sketch "
              "for the quantile items)")));

  for (double q : quantiles) {
    PIPES_RETURN_NOT_OK(node.metadata_registry().Define(
        MetadataDescriptor::Triggered(ValueQuantileKey(q))
            .DependsOnSelf(kValueDistributionEpoch)
            .WithEvaluator([sketch, q](EvalContext& ctx) -> MetadataValue {
              if (ctx.Dep(0).is_null()) return MetadataValue::Null();
              std::lock_guard<std::mutex> lock(sketch->mu);
              if (sketch->snapshot.count() == 0) return ctx.Previous();
              return sketch->snapshot.Quantile(q);
            })
            .WithDescription("per-window value quantile (triggered over the "
                             "shared histogram sketch)")));
  }
  return Status::OK();
}

}  // namespace pipes
