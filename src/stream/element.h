/// \file element.h
/// \brief A stream element: a tuple plus temporal annotations.
///
/// Following the PIPES time-based windowing model, every element carries an
/// application timestamp and a validity interval end. "In the case of a
/// time-based sliding window, this [window] operator assigns a validity to
/// each incoming stream element according to the window size." (paper §2.5)

#pragma once

#include <string>

#include "common/types.h"
#include "stream/tuple.h"

namespace pipes {

struct StreamElement {
  Tuple tuple;
  /// Application time of the element.
  Timestamp timestamp = 0;
  /// End of the element's validity interval [timestamp, validity_end).
  /// kTimestampMax before a window operator assigned a finite validity.
  Timestamp validity_end = kTimestampMax;

  StreamElement() = default;
  StreamElement(Tuple t, Timestamp ts,
                Timestamp valid_end = kTimestampMax)
      : tuple(std::move(t)), timestamp(ts), validity_end(valid_end) {}

  /// True if the element is still valid at time `t`.
  bool ValidAt(Timestamp t) const { return t < validity_end; }

  /// Estimated in-memory size in bytes.
  size_t MemoryBytes() const { return tuple.MemoryBytes() + 2 * sizeof(Timestamp); }

  std::string ToString() const {
    return tuple.ToString() + "@" + std::to_string(timestamp);
  }
};

}  // namespace pipes
