#include "stream/expr.h"

#include <cmath>
#include <sstream>

namespace pipes::expr {

namespace {

ExprPtr MakeBinary(ExprKind kind, ExprPtr a, ExprPtr b) {
  return std::make_shared<Expr>(kind, 0, Value(false),
                                std::vector<ExprPtr>{std::move(a),
                                                     std::move(b)});
}

bool IsComparison(ExprKind k) {
  return k == ExprKind::kEq || k == ExprKind::kNe || k == ExprKind::kLt ||
         k == ExprKind::kLe || k == ExprKind::kGt || k == ExprKind::kGe;
}

bool IsArithmetic(ExprKind k) {
  return k == ExprKind::kAdd || k == ExprKind::kSub || k == ExprKind::kMul ||
         k == ExprKind::kDiv || k == ExprKind::kMod;
}

const char* OpToken(ExprKind k) {
  switch (k) {
    case ExprKind::kAdd:
      return "+";
    case ExprKind::kSub:
      return "-";
    case ExprKind::kMul:
      return "*";
    case ExprKind::kDiv:
      return "/";
    case ExprKind::kMod:
      return "%";
    case ExprKind::kEq:
      return "==";
    case ExprKind::kNe:
      return "!=";
    case ExprKind::kLt:
      return "<";
    case ExprKind::kLe:
      return "<=";
    case ExprKind::kGt:
      return ">";
    case ExprKind::kGe:
      return ">=";
    case ExprKind::kAnd:
      return "&&";
    case ExprKind::kOr:
      return "||";
    default:
      return "?";
  }
}

}  // namespace

ExprPtr Col(size_t index) {
  return std::make_shared<Expr>(ExprKind::kColumn, index, Value(false),
                                std::vector<ExprPtr>{});
}

ExprPtr Const(int64_t v) {
  return std::make_shared<Expr>(ExprKind::kConst, 0, Value(v),
                                std::vector<ExprPtr>{});
}
ExprPtr Const(double v) {
  return std::make_shared<Expr>(ExprKind::kConst, 0, Value(v),
                                std::vector<ExprPtr>{});
}
ExprPtr Const(bool v) {
  return std::make_shared<Expr>(ExprKind::kConst, 0, Value(v),
                                std::vector<ExprPtr>{});
}
ExprPtr Const(const char* v) { return Const(std::string(v)); }
ExprPtr Const(std::string v) {
  return std::make_shared<Expr>(ExprKind::kConst, 0, Value(std::move(v)),
                                std::vector<ExprPtr>{});
}

ExprPtr Add(ExprPtr a, ExprPtr b) {
  return MakeBinary(ExprKind::kAdd, std::move(a), std::move(b));
}
ExprPtr Sub(ExprPtr a, ExprPtr b) {
  return MakeBinary(ExprKind::kSub, std::move(a), std::move(b));
}
ExprPtr Mul(ExprPtr a, ExprPtr b) {
  return MakeBinary(ExprKind::kMul, std::move(a), std::move(b));
}
ExprPtr Div(ExprPtr a, ExprPtr b) {
  return MakeBinary(ExprKind::kDiv, std::move(a), std::move(b));
}
ExprPtr Mod(ExprPtr a, ExprPtr b) {
  return MakeBinary(ExprKind::kMod, std::move(a), std::move(b));
}
ExprPtr Eq(ExprPtr a, ExprPtr b) {
  return MakeBinary(ExprKind::kEq, std::move(a), std::move(b));
}
ExprPtr Ne(ExprPtr a, ExprPtr b) {
  return MakeBinary(ExprKind::kNe, std::move(a), std::move(b));
}
ExprPtr Lt(ExprPtr a, ExprPtr b) {
  return MakeBinary(ExprKind::kLt, std::move(a), std::move(b));
}
ExprPtr Le(ExprPtr a, ExprPtr b) {
  return MakeBinary(ExprKind::kLe, std::move(a), std::move(b));
}
ExprPtr Gt(ExprPtr a, ExprPtr b) {
  return MakeBinary(ExprKind::kGt, std::move(a), std::move(b));
}
ExprPtr Ge(ExprPtr a, ExprPtr b) {
  return MakeBinary(ExprKind::kGe, std::move(a), std::move(b));
}
ExprPtr And(ExprPtr a, ExprPtr b) {
  return MakeBinary(ExprKind::kAnd, std::move(a), std::move(b));
}
ExprPtr Or(ExprPtr a, ExprPtr b) {
  return MakeBinary(ExprKind::kOr, std::move(a), std::move(b));
}
ExprPtr Not(ExprPtr a) {
  return std::make_shared<Expr>(ExprKind::kNot, 0, Value(false),
                                std::vector<ExprPtr>{std::move(a)});
}

Value Expr::Eval(const Tuple& t) const {
  switch (kind_) {
    case ExprKind::kColumn:
      return t.at(column_);
    case ExprKind::kConst:
      return constant_;
    case ExprKind::kNot:
      return Value(!ValueAsDouble(children_[0]->Eval(t)));
    case ExprKind::kAnd: {
      // Short-circuit.
      if (ValueAsDouble(children_[0]->Eval(t)) == 0.0) return Value(false);
      return Value(ValueAsDouble(children_[1]->Eval(t)) != 0.0);
    }
    case ExprKind::kOr: {
      if (ValueAsDouble(children_[0]->Eval(t)) != 0.0) return Value(true);
      return Value(ValueAsDouble(children_[1]->Eval(t)) != 0.0);
    }
    default:
      break;
  }

  Value lhs = children_[0]->Eval(t);
  Value rhs = children_[1]->Eval(t);
  // String equality comparisons compare the strings themselves.
  bool strings = std::holds_alternative<std::string>(lhs) &&
                 std::holds_alternative<std::string>(rhs);
  if (IsComparison(kind_) && strings) {
    int cmp = std::get<std::string>(lhs).compare(std::get<std::string>(rhs));
    switch (kind_) {
      case ExprKind::kEq:
        return Value(cmp == 0);
      case ExprKind::kNe:
        return Value(cmp != 0);
      case ExprKind::kLt:
        return Value(cmp < 0);
      case ExprKind::kLe:
        return Value(cmp <= 0);
      case ExprKind::kGt:
        return Value(cmp > 0);
      default:
        return Value(cmp >= 0);
    }
  }

  // Integer-preserving arithmetic when both sides are integers.
  bool ints = std::holds_alternative<int64_t>(lhs) &&
              std::holds_alternative<int64_t>(rhs);
  if (IsArithmetic(kind_) && ints && kind_ != ExprKind::kDiv) {
    int64_t a = std::get<int64_t>(lhs);
    int64_t b = std::get<int64_t>(rhs);
    switch (kind_) {
      case ExprKind::kAdd:
        return Value(a + b);
      case ExprKind::kSub:
        return Value(a - b);
      case ExprKind::kMul:
        return Value(a * b);
      case ExprKind::kMod:
        return Value(b == 0 ? int64_t{0} : a % b);
      default:
        break;
    }
  }

  double a = ValueAsDouble(lhs);
  double b = ValueAsDouble(rhs);
  switch (kind_) {
    case ExprKind::kAdd:
      return Value(a + b);
    case ExprKind::kSub:
      return Value(a - b);
    case ExprKind::kMul:
      return Value(a * b);
    case ExprKind::kDiv:
      return Value(b == 0.0 ? 0.0 : a / b);
    case ExprKind::kMod:
      return Value(b == 0.0 ? 0.0 : std::fmod(a, b));
    case ExprKind::kEq:
      return Value(a == b);
    case ExprKind::kNe:
      return Value(a != b);
    case ExprKind::kLt:
      return Value(a < b);
    case ExprKind::kLe:
      return Value(a <= b);
    case ExprKind::kGt:
      return Value(a > b);
    case ExprKind::kGe:
      return Value(a >= b);
    default:
      return Value(false);
  }
}

Result<DataType> Expr::Validate(const Schema& schema) const {
  switch (kind_) {
    case ExprKind::kColumn:
      if (column_ >= schema.arity()) {
        return Status::InvalidArgument(
            "column " + std::to_string(column_) + " out of range (arity " +
            std::to_string(schema.arity()) + ")");
      }
      return schema.field(column_).type;
    case ExprKind::kConst:
      return ValueType(constant_);
    default:
      break;
  }

  std::vector<DataType> child_types;
  for (const ExprPtr& c : children_) {
    Result<DataType> t = c->Validate(schema);
    if (!t.ok()) return t.status();
    child_types.push_back(t.value());
  }

  if (kind_ == ExprKind::kNot || kind_ == ExprKind::kAnd ||
      kind_ == ExprKind::kOr) {
    for (DataType t : child_types) {
      if (t == DataType::kString) {
        return Status::InvalidArgument("boolean operator over string operand");
      }
    }
    return DataType::kBool;
  }

  bool any_string = false;
  for (DataType t : child_types) any_string |= (t == DataType::kString);
  if (IsArithmetic(kind_)) {
    if (any_string) {
      return Status::InvalidArgument("arithmetic over string operand");
    }
    bool both_int = child_types[0] == DataType::kInt64 &&
                    child_types[1] == DataType::kInt64;
    return both_int && kind_ != ExprKind::kDiv ? DataType::kInt64
                                               : DataType::kDouble;
  }
  // Comparisons: strings may only meet strings.
  if (any_string && !(child_types[0] == DataType::kString &&
                      child_types[1] == DataType::kString)) {
    return Status::InvalidArgument("comparison between string and number");
  }
  return DataType::kBool;
}

double Expr::Cost() const {
  double cost = 1.0;
  if (IsComparison(kind_)) {
    for (const ExprPtr& c : children_) {
      if (c->kind() == ExprKind::kConst &&
          std::holds_alternative<std::string>(c->constant())) {
        cost += 3.0;  // string comparisons are pricier
      }
    }
  }
  for (const ExprPtr& c : children_) cost += c->Cost();
  return cost;
}

std::string Expr::ToString() const {
  switch (kind_) {
    case ExprKind::kColumn:
      return "col" + std::to_string(column_);
    case ExprKind::kConst:
      return ValueToString(constant_);
    case ExprKind::kNot:
      return "!(" + children_[0]->ToString() + ")";
    default: {
      std::ostringstream os;
      os << "(" << children_[0]->ToString() << " " << OpToken(kind_) << " "
         << children_[1]->ToString() << ")";
      return os.str();
    }
  }
}

Result<FilterOperator::Predicate> CompilePredicate(const ExprPtr& e,
                                                   const Schema& schema) {
  if (e == nullptr) return Status::InvalidArgument("null expression");
  Result<DataType> t = e->Validate(schema);
  if (!t.ok()) return t.status();
  if (t.value() == DataType::kString) {
    return Status::InvalidArgument("predicate must not be a string: " +
                                   e->ToString());
  }
  ExprPtr expr = e;
  return FilterOperator::Predicate(
      [expr](const Tuple& tuple) { return ValueAsDouble(expr->Eval(tuple)) != 0.0; });
}

Result<std::pair<Schema, MapOperator::MapFn>> CompileProjection(
    const std::vector<Projection>& projections, const Schema& schema) {
  if (projections.empty()) {
    return Status::InvalidArgument("empty projection list");
  }
  std::vector<Field> fields;
  std::vector<ExprPtr> exprs;
  for (const Projection& p : projections) {
    if (p.value == nullptr) {
      return Status::InvalidArgument("null expression for '" + p.name + "'");
    }
    Result<DataType> t = p.value->Validate(schema);
    if (!t.ok()) return t.status();
    fields.push_back(Field{p.name, t.value()});
    exprs.push_back(p.value);
  }
  Schema out(std::move(fields));
  MapOperator::MapFn fn = [exprs](const Tuple& t) {
    std::vector<Value> values;
    values.reserve(exprs.size());
    for (const ExprPtr& e : exprs) values.push_back(e->Eval(t));
    return Tuple(std::move(values));
  };
  return std::make_pair(std::move(out), std::move(fn));
}

}  // namespace pipes::expr
