#!/usr/bin/env bash
# Static gates for the repo.
#
# Usage:
#   tools/lint.sh [build-dir]            clang-tidy over src/, tools/, bench/
#   tools/lint.sh --format-check         clang-format --dry-run -Werror
#   tools/lint.sh --analyze [build-dir]  build + run tools/pipes_analyze
#
# clang-tidy / clang-format are optional locally (the CI jobs are the
# gate); --analyze needs only cmake and the project compiler, so it always
# runs. Exits nonzero on findings.
set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"

MODE=tidy
case "${1:-}" in
  --format-check) MODE=format; shift ;;
  --analyze)      MODE=analyze; shift ;;
esac
BUILD_DIR="${1:-$ROOT/build-lint}"

cxx_files() {
  find "$ROOT/src" "$ROOT/tools" "$ROOT/bench" "$ROOT/tests" \
       "$ROOT/examples" -name '*.cc' -o -name '*.h' 2>/dev/null | sort
}

if [ "$MODE" = format ]; then
  FMT="$(command -v clang-format || true)"
  if [ -z "$FMT" ]; then
    echo "lint.sh: clang-format not found on PATH; skipping (CI enforces)." >&2
    exit 0  # tooling gap, not a format failure: keep local builds usable
  fi
  echo "lint.sh: format-checking $(cxx_files | wc -l) files"
  # shellcheck disable=SC2046
  "$FMT" --dry-run -Werror $(cxx_files)
  STATUS=$?
  if [ "$STATUS" -ne 0 ]; then
    echo "lint.sh: clang-format reported style drift (see above)" >&2
  fi
  exit "$STATUS"
fi

if [ "$MODE" = analyze ]; then
  if [ ! -f "$BUILD_DIR/CMakeCache.txt" ]; then
    echo "lint.sh: configuring $BUILD_DIR for pipes_analyze"
    cmake -S "$ROOT" -B "$BUILD_DIR" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
          -DPIPES_BUILD_TESTS=OFF -DPIPES_BUILD_BENCHMARKS=OFF \
          -DPIPES_BUILD_EXAMPLES=OFF >/dev/null || exit 2
  fi
  cmake --build "$BUILD_DIR" --target pipes_analyze -j >/dev/null || exit 2
  exec "$BUILD_DIR/tools/pipes_analyze" --root "$ROOT"
fi

TIDY="$(command -v clang-tidy || true)"
if [ -z "$TIDY" ]; then
  echo "lint.sh: clang-tidy not found on PATH." >&2
  echo "lint.sh: install clang-tidy (e.g. 'apt-get install clang-tidy') or" >&2
  echo "lint.sh: rely on the 'clang-tidy' job in .github/workflows/ci.yml." >&2
  exit 0  # tooling gap, not a lint failure: keep local builds usable
fi

if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "lint.sh: configuring $BUILD_DIR for compile_commands.json"
  cmake -S "$ROOT" -B "$BUILD_DIR" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null || exit 1
fi

FILES="$(find "$ROOT/src" "$ROOT/tools" "$ROOT/bench" -name '*.cc' | sort)"
echo "lint.sh: linting $(echo "$FILES" | wc -l) files"

STATUS=0
for f in $FILES; do
  "$TIDY" -p "$BUILD_DIR" --quiet "$f" || STATUS=1
done

if [ "$STATUS" -ne 0 ]; then
  echo "lint.sh: clang-tidy reported findings (see above)" >&2
fi
exit "$STATUS"
