#!/usr/bin/env bash
# Runs clang-tidy over every .cc file in src/ using the checks in .clang-tidy.
#
# Usage: tools/lint.sh [build-dir]
#
# The build dir must contain compile_commands.json; the script configures one
# with CMAKE_EXPORT_COMPILE_COMMANDS if missing. Exits nonzero on findings.
set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$ROOT/build-lint}"

TIDY="$(command -v clang-tidy || true)"
if [ -z "$TIDY" ]; then
  echo "lint.sh: clang-tidy not found on PATH." >&2
  echo "lint.sh: install clang-tidy (e.g. 'apt-get install clang-tidy') or" >&2
  echo "lint.sh: rely on the 'clang-tidy' job in .github/workflows/ci.yml." >&2
  exit 0  # tooling gap, not a lint failure: keep local builds usable
fi

if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "lint.sh: configuring $BUILD_DIR for compile_commands.json"
  cmake -S "$ROOT" -B "$BUILD_DIR" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null || exit 1
fi

FILES="$(find "$ROOT/src" -name '*.cc' | sort)"
echo "lint.sh: linting $(echo "$FILES" | wc -l) files"

STATUS=0
for f in $FILES; do
  "$TIDY" -p "$BUILD_DIR" --quiet "$f" || STATUS=1
done

if [ "$STATUS" -ne 0 ]; then
  echo "lint.sh: clang-tidy reported findings (see above)" >&2
fi
exit "$STATUS"
