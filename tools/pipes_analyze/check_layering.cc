/// \file check_layering.cc
/// \brief layering: the include DAG between src/ modules must match the
/// build graph, and src/ must never reach into tests/ or bench/.
///
/// Allowed module dependencies (mirror of src/*/CMakeLists.txt):
///
///     common    -> common
///     net       -> net, common
///     metadata  -> metadata, net, common
///     stream    -> stream, metadata, common
///     costmodel -> costmodel, stream, metadata, common
///     runtime   -> runtime, costmodel, stream, metadata, common
///     query     -> everything      (src/stream/query_builder.*, the
///                                   pipes_query target above costmodel)
///     testing   -> testing, metadata, net, common
///
/// net sits between common and metadata: transports know nothing about
/// descriptors or registries (federation lives in metadata and injects the
/// endpoint), so net may reach only into common.
///
/// testing (the simulation harness) is a leaf like runtime: it drives the
/// metadata stack through its public headers, and no product module may
/// include it — the harness observes the system, never the reverse.
///
/// query_builder lives in the src/stream directory but is its own library
/// precisely because it depends on the cost model; the checker models it as
/// its own layer, and conversely nothing below query may include it.

#include <map>
#include <string>
#include <vector>

#include "pipes_analyze/analyzer.h"
#include "pipes_analyze/source_model.h"

namespace pipes::analyze {
namespace {

constexpr const char* kCheck = "layering";

/// src/stream/query_builder.* forms the "query" layer above everything.
bool IsQueryLayer(const std::string& rel) {
  return rel == "src/stream/query_builder.h" ||
         rel == "src/stream/query_builder.cc";
}

/// Module of a root-relative src/ path ("" when not under src/).
std::string ModuleOf(const std::string& rel) {
  if (rel.rfind("src/", 0) != 0) return "";
  size_t slash = rel.find('/', 4);
  if (slash == std::string::npos) return "";
  return rel.substr(4, slash - 4);
}

const std::map<std::string, std::vector<std::string>>& AllowedDeps() {
  static const std::map<std::string, std::vector<std::string>> kAllowed = {
      {"common", {"common"}},
      {"net", {"net", "common"}},
      {"metadata", {"metadata", "net", "common"}},
      {"stream", {"stream", "metadata", "net", "common"}},
      {"costmodel", {"costmodel", "stream", "metadata", "net", "common"}},
      {"runtime",
       {"runtime", "costmodel", "stream", "metadata", "net", "common"}},
      {"query",
       {"query", "runtime", "costmodel", "stream", "metadata", "net",
        "common"}},
      {"testing", {"testing", "metadata", "net", "common"}},
  };
  return kAllowed;
}

bool Allows(const std::string& from, const std::string& to) {
  auto it = AllowedDeps().find(from);
  if (it == AllowedDeps().end()) return false;
  for (const std::string& m : it->second) {
    if (m == to) return true;
  }
  return false;
}

/// Extracts `#include "..."` targets (quoted form only — system headers are
/// outside the layering contract) with their line numbers.
std::vector<std::pair<std::string, int>> QuotedIncludes(
    const SourceFile& file) {
  std::vector<std::pair<std::string, int>> out;
  const std::string& s = file.stripped;
  int line = 1;
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\n') {
      ++line;
      continue;
    }
    if (s[i] != '#') continue;
    size_t p = i + 1;
    while (p < s.size() && (s[p] == ' ' || s[p] == '\t')) ++p;
    if (s.compare(p, 7, "include") != 0) continue;
    p += 7;
    while (p < s.size() && (s[p] == ' ' || s[p] == '\t')) ++p;
    if (p >= s.size() || s[p] != '"') continue;
    size_t close = s.find('"', p + 1);
    if (close == std::string::npos) continue;
    out.emplace_back(s.substr(p + 1, close - p - 1), line);
  }
  return out;
}

}  // namespace

void CheckLayering(const Options& opts, std::vector<Finding>* out) {
  std::vector<std::string> files = ListSources(opts.root, "src");
  if (files.empty()) {
    out->push_back({kCheck, "src", 0, "no sources found under src/"});
    return;
  }
  for (const std::string& rel : files) {
    auto file = LoadSource(opts.root, rel);
    if (!file) {
      out->push_back({kCheck, rel, 0, "could not read file"});
      continue;
    }
    std::string from =
        IsQueryLayer(rel) ? std::string("query") : ModuleOf(rel);
    if (from.empty()) continue;  // src/ top-level files have no layer
    for (const auto& [inc, line] : QuotedIncludes(*file)) {
      if (inc.rfind("tests/", 0) == 0 || inc.rfind("bench/", 0) == 0) {
        out->push_back({kCheck, rel, line,
                        "src/ must not include test or bench headers: \"" +
                            inc + "\""});
        continue;
      }
      if (inc.rfind("../", 0) == 0 || inc.find("/../") != std::string::npos) {
        out->push_back({kCheck, rel, line,
                        "relative up-path include escapes the src/ include "
                        "root: \"" +
                            inc + "\""});
        continue;
      }
      // Includes resolve against src/ (the only include root).
      std::string to = IsQueryLayer("src/" + inc) ? std::string("query")
                                                  : ModuleOf("src/" + inc);
      if (to.empty()) continue;  // non-module header (none today)
      if (!Allows(from, to)) {
        out->push_back({kCheck, rel, line,
                        "layer '" + from + "' must not include layer '" + to +
                            "' (\"" + inc +
                            "\"); allowed DAG: common <- net <- metadata "
                            "<- stream <- {costmodel, runtime} <- query"});
      }
    }
  }
}

}  // namespace pipes::analyze
