/// \file check_kill_points.cc
/// \brief kill-points: every KillPoint("site") in src/ must be unique and
/// exercised by the crash matrix in tests/metadata/durability_test.cc, and
/// the matrix must list no stale sites.
///
/// The crash matrix forks a child per site and asserts that everything
/// acknowledged before the kill is recovered. That guarantee is only as
/// complete as the site list: a durability change that adds a new crash
/// window (a new KillPoint) without a matrix row is untested exactly where
/// it is most dangerous. Duplicate site names are equally bad — ArmKillPoint
/// matches by name, so a duplicate silently arms two windows and the matrix
/// can no longer attribute a failure to one.

#include <map>
#include <set>
#include <string>
#include <vector>

#include "pipes_analyze/analyzer.h"
#include "pipes_analyze/source_model.h"

namespace pipes::analyze {
namespace {

constexpr const char* kCheck = "kill-points";
constexpr const char* kMatrixFile = "tests/metadata/durability_test.cc";
constexpr const char* kMatrixArray = "kKillSites";

struct Site {
  std::string file;
  int line = 0;
};

}  // namespace

void CheckKillPoints(const Options& opts, std::vector<Finding>* out) {
  // Gather KillPoint("...") call sites across src/.
  std::map<std::string, Site> sites;
  for (const std::string& rel : ListSources(opts.root, "src")) {
    auto file = LoadSource(opts.root, rel);
    if (!file) continue;
    std::vector<Token> toks = Lex(file->stripped);
    for (size_t i = 0; i + 2 < toks.size(); ++i) {
      if (!(toks[i].IsIdent("KillPoint") ||
            toks[i].IsIdent("PIPES_KILL_POINT")) ||
          !toks[i + 1].Is("(") || toks[i + 2].kind != TokKind::kString) {
        continue;
      }
      const std::string& name = toks[i + 2].text;
      auto it = sites.find(name);
      if (it != sites.end()) {
        out->push_back({kCheck, rel, toks[i + 2].line,
                        "kill-point site '" + name + "' duplicates " +
                            it->second.file + ":" +
                            std::to_string(it->second.line) +
                            " (sites arm by name and must be unique)"});
      } else {
        sites[name] = Site{rel, toks[i + 2].line};
      }
    }
  }
  if (sites.empty()) {
    out->push_back(
        {kCheck, "src", 0, "no KillPoint sites found anywhere in src/"});
    return;
  }

  auto matrix = LoadSource(opts.root, kMatrixFile);
  if (!matrix) {
    out->push_back({kCheck, kMatrixFile, 0,
                    "crash matrix file missing — kill points are untested"});
    return;
  }
  std::vector<Token> mtoks = Lex(matrix->stripped);

  // Parse the kKillSites array initializer for the stale-entry direction.
  std::set<std::string> matrix_sites;
  int array_line = 0;
  for (size_t i = 0; i < mtoks.size(); ++i) {
    if (!mtoks[i].IsIdent(kMatrixArray)) continue;
    size_t open = i;
    while (open < mtoks.size() && !mtoks[open].Is("{")) ++open;
    size_t close = MatchingClose(mtoks, open);
    for (size_t j = open + 1; j < close; ++j) {
      if (mtoks[j].kind == TokKind::kString) {
        matrix_sites.insert(mtoks[j].text);
        array_line = mtoks[j].line;
      }
    }
    break;
  }
  if (matrix_sites.empty()) {
    out->push_back({kCheck, kMatrixFile, 0,
                    std::string("crash-matrix array ") + kMatrixArray +
                        " not found or empty"});
    return;
  }

  for (const auto& [name, site] : sites) {
    if (!matrix_sites.count(name)) {
      out->push_back({kCheck, site.file, site.line,
                      "kill-point site '" + name + "' is not in the " +
                          kMatrixArray + " crash matrix (" + kMatrixFile +
                          ") — this crash window is untested"});
    }
  }
  for (const std::string& name : matrix_sites) {
    if (!sites.count(name)) {
      out->push_back({kCheck, kMatrixFile, array_line,
                      "crash matrix lists '" + name +
                          "' but no such KillPoint exists in src/ (stale "
                          "entry?)"});
    }
  }
}

}  // namespace pipes::analyze
