/// \file lock_graph.h
/// \brief Lock-order snapshot IO shared by the lock-rank check and the
/// `--update-lock-graph` regeneration mode.
///
/// Snapshot format (one edge per line, `#` comments allowed):
///
///     <from> -> <to>  [holding: <name>, <name>, ...]
///
/// which is exactly what LockOrderValidator::WriteEdges emits via
/// PIPES_LOCK_ORDER_DUMP, deduplicated and filtered to production lock
/// classes (test fixtures register their own throwaway classes; those do
/// not belong in the committed contract).

#pragma once

#include <map>
#include <string>
#include <vector>

#include "pipes_analyze/analyzer.h"

namespace pipes::analyze {

/// Committed snapshot location, relative to the repository root.
inline constexpr const char* kDefaultLockGraphPath =
    "tools/lock_order_graph.txt";

/// One statically discovered lock construction site.
struct LockSite {
  std::string file;  ///< root-relative declaration site
  int line = 0;
  int rank = 0;  ///< resolved kRank* value; 0 = unranked
};

/// One snapshot edge: `from` was held when `to` was acquired.
struct LockEdge {
  std::string from;
  std::string to;
  int line = 0;  ///< line in the snapshot file
};

/// Parses kRank* constants out of src/common/lock_order.h.
std::map<std::string, int> ExtractRankTable(const Options& opts,
                                            std::vector<Finding>* out);

/// Collects `{"name", kRank*}` lock constructions across src/.
std::map<std::string, LockSite> ExtractLockSites(
    const Options& opts, const std::map<std::string, int>& ranks,
    std::vector<Finding>* out);

/// Reads a snapshot file. False when the file cannot be read.
bool LoadLockGraph(const std::string& root, const std::string& rel,
                   std::vector<LockEdge>* out);

/// Regenerates the committed snapshot from a raw PIPES_LOCK_ORDER_DUMP
/// file: keeps edges whose endpoints are both production lock classes,
/// dedupes, sorts, writes to `opts.lock_graph_path` (or the default).
/// Returns false (with a message on stderr) on IO failure.
bool UpdateLockGraph(const Options& opts, const std::string& raw_dump_path);

}  // namespace pipes::analyze
