/// \file source_model.h
/// \brief Shared source-scanning infrastructure for pipes_analyze: file
/// enumeration, comment stripping (with `pipes-analyze:` waiver capture),
/// and a line-tracking token stream.
///
/// This is not a C++ parser. It is a lexer plus per-check heuristics tuned
/// to this repository's style (Google-ish, brace-initialized members, no
/// macros that open scopes). The checks only ever need declarations and
/// literals, so lexing is enough — and it keeps the tool dependency-free.

#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

namespace pipes::analyze {

// ---------------------------------------------------------------------------
// Tokens
// ---------------------------------------------------------------------------

enum class TokKind {
  kIdent,   ///< identifier or keyword
  kNumber,  ///< numeric literal (incl. suffixes)
  kString,  ///< string literal; `text` holds the unquoted, unescaped value
  kChar,    ///< character literal
  kPunct,   ///< one punctuation character (multi-char ops stay split)
};

struct Token {
  TokKind kind;
  std::string text;
  int line = 0;  ///< 1-based source line of the first character

  bool Is(const char* s) const { return text == s; }
  bool IsIdent(const char* s) const { return kind == TokKind::kIdent && text == s; }
};

// ---------------------------------------------------------------------------
// Files
// ---------------------------------------------------------------------------

/// A loaded source file: raw text, comment-stripped text (string literals
/// kept, comments replaced by spaces so offsets and line numbers hold), and
/// the `pipes-analyze: <directive>(<reason>)` waivers found in comments.
struct SourceFile {
  std::string rel;       ///< root-relative path, '/'-separated
  std::string raw;       ///< file content as read
  std::string stripped;  ///< comments blanked out, everything else intact

  /// One waiver directive, e.g. `// pipes-analyze: unguarded(ctor-only)`.
  struct Waiver {
    int line = 0;            ///< 1-based line the comment ends on
    std::string directive;   ///< e.g. "unguarded"
    std::string reason;      ///< text inside the parentheses
  };
  std::vector<Waiver> waivers;

  /// True when some waiver with `directive` sits on `line` or on the
  /// directly preceding line (the two sanctioned placements).
  bool HasWaiver(const std::string& directive, int line) const;
};

/// Reads and strips one file. Returns nullopt on IO failure.
std::optional<SourceFile> LoadSource(const std::string& root,
                                     const std::string& rel);

/// Lists .h/.cc files under `root`/`subdir` (sorted, root-relative,
/// '/'-separated). Missing directory => empty list.
std::vector<std::string> ListSources(const std::string& root,
                                     const std::string& subdir);

/// Lexes comment-stripped text into tokens.
std::vector<Token> Lex(const std::string& stripped);

/// Index of the matching close for the open bracket at `tokens[open]`
/// (`(`/`)`, `{`/`}`, `[`/`]`). Returns tokens.size() when unbalanced.
size_t MatchingClose(const std::vector<Token>& tokens, size_t open);

}  // namespace pipes::analyze
