/// \file check_sim_seams.cc
/// \brief sim-seams: tests/sim/ may only include the published test seams.
///
/// The simulation suite is the executable specification of the metadata
/// stack's *public* behaviour. The moment a sim test includes an internal
/// header (a handler, the persistence engine, a lock table) it starts
/// asserting implementation details and stops being evidence that the
/// public surface is sufficient. So: every quoted include in tests/sim/
/// must resolve into src/testing/ — the harness facade re-exports
/// everything a schedule-driven test legitimately needs. System headers
/// (angle form) and the test framework are outside the contract.
///
/// A tree without tests/sim/ is silent: not every fixture grows a
/// simulation suite.

#include <string>
#include <utility>
#include <vector>

#include "pipes_analyze/analyzer.h"
#include "pipes_analyze/source_model.h"

namespace pipes::analyze {
namespace {

constexpr const char* kCheck = "sim-seams";

/// Extracts `#include "..."` targets with line numbers (quoted form only).
std::vector<std::pair<std::string, int>> QuotedIncludes(
    const SourceFile& file) {
  std::vector<std::pair<std::string, int>> out;
  const std::string& s = file.stripped;
  int line = 1;
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\n') {
      ++line;
      continue;
    }
    if (s[i] != '#') continue;
    size_t p = i + 1;
    while (p < s.size() && (s[p] == ' ' || s[p] == '\t')) ++p;
    if (s.compare(p, 7, "include") != 0) continue;
    p += 7;
    while (p < s.size() && (s[p] == ' ' || s[p] == '\t')) ++p;
    if (p >= s.size() || s[p] != '"') continue;
    size_t close = s.find('"', p + 1);
    if (close == std::string::npos) continue;
    out.emplace_back(s.substr(p + 1, close - p - 1), line);
  }
  return out;
}

}  // namespace

void CheckSimSeams(const Options& opts, std::vector<Finding>* out) {
  for (const std::string& rel : ListSources(opts.root, "tests/sim")) {
    auto file = LoadSource(opts.root, rel);
    if (!file) {
      out->push_back({kCheck, rel, 0, "could not read file"});
      continue;
    }
    for (const auto& [inc, line] : QuotedIncludes(*file)) {
      if (inc.rfind("testing/", 0) == 0) continue;
      out->push_back(
          {kCheck, rel, line,
           "sim tests may only include the published test seams "
           "(src/testing/); \"" +
               inc + "\" reaches past the harness facade"});
    }
  }
}

}  // namespace pipes::analyze
