/// \file main.cc
/// \brief CLI for pipes_analyze (see analyzer.h for the checks).
///
///   pipes_analyze --root <repo> [--check <name>]... [--report <path>]
///                 [--lock-graph <rel-path>] [--list-checks]
///   pipes_analyze --root <repo> --update-lock-graph <raw-dump>
///
/// Exit codes: 0 clean, 1 findings, 2 usage or IO error.

#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "pipes_analyze/analyzer.h"
#include "pipes_analyze/lock_graph.h"

namespace {

int Usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [--root DIR] [--check NAME]...\n"
      << "          [--report PATH] [--lock-graph REL] [--list-checks]\n"
      << "       " << argv0 << " [--root DIR] --update-lock-graph RAW_DUMP\n"
      << "\n"
      << "Project-invariant static analyzer for the pipes codebase.\n"
      << "--root defaults to the current directory; it must contain src/.\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  pipes::analyze::Options opts;
  opts.root = ".";
  std::vector<std::string> checks;
  std::string report_path;
  std::string update_dump;
  bool list_checks = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--root") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      opts.root = v;
    } else if (arg == "--check") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      checks.push_back(v);
    } else if (arg == "--report") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      report_path = v;
    } else if (arg == "--lock-graph") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      opts.lock_graph_path = v;
    } else if (arg == "--update-lock-graph") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      update_dump = v;
    } else if (arg == "--list-checks") {
      list_checks = true;
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else {
      std::cerr << "pipes_analyze: unknown argument '" << arg << "'\n";
      return Usage(argv[0]);
    }
  }

  if (list_checks) {
    for (const std::string& name : pipes::analyze::AllCheckNames()) {
      std::cout << name << "\n";
    }
    return 0;
  }

  if (!std::filesystem::is_directory(std::filesystem::path(opts.root) /
                                     "src")) {
    std::cerr << "pipes_analyze: --root '" << opts.root
              << "' does not contain src/\n";
    return 2;
  }

  if (!update_dump.empty()) {
    return pipes::analyze::UpdateLockGraph(opts, update_dump) ? 0 : 2;
  }

  std::vector<pipes::analyze::Finding> findings =
      pipes::analyze::RunChecks(opts, checks);

  std::string report;
  for (const auto& f : findings) {
    report += f.ToString() + "\n";
  }
  report += "pipes_analyze: " + std::to_string(findings.size()) +
            " finding(s) across " +
            std::to_string(checks.empty()
                               ? pipes::analyze::AllCheckNames().size()
                               : checks.size()) +
            " check(s)\n";
  std::cout << report;
  if (!report_path.empty()) {
    std::ofstream out(report_path, std::ios::trunc);
    out << report;
    if (!out.good()) {
      std::cerr << "pipes_analyze: failed to write report to " << report_path
                << "\n";
      return 2;
    }
  }
  return findings.empty() ? 0 : 1;
}
