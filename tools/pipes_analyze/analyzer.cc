#include "pipes_analyze/analyzer.h"

#include <algorithm>

namespace pipes::analyze {

std::string Finding::ToString() const {
  std::string s = file;
  if (line > 0) s += ":" + std::to_string(line);
  s += ": [" + check + "] " + message;
  return s;
}

std::vector<std::string> AllCheckNames() {
  return {"guard-coverage", "layering", "lock-rank", "journal",
          "kill-points", "determinism", "sim-seams"};
}

std::vector<Finding> RunChecks(const Options& opts,
                               const std::vector<std::string>& checks) {
  std::vector<std::string> selected =
      checks.empty() ? AllCheckNames() : checks;
  std::vector<Finding> out;
  for (const std::string& name : selected) {
    if (name == "guard-coverage") {
      CheckGuardCoverage(opts, &out);
    } else if (name == "layering") {
      CheckLayering(opts, &out);
    } else if (name == "lock-rank") {
      CheckLockRanks(opts, &out);
    } else if (name == "journal") {
      CheckJournalExhaustiveness(opts, &out);
    } else if (name == "kill-points") {
      CheckKillPoints(opts, &out);
    } else if (name == "determinism") {
      CheckDeterminism(opts, &out);
    } else if (name == "sim-seams") {
      CheckSimSeams(opts, &out);
    } else {
      out.push_back({"usage", "", 0, "unknown check '" + name + "'"});
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const Finding& a, const Finding& b) {
                     if (a.check != b.check) return a.check < b.check;
                     if (a.file != b.file) return a.file < b.file;
                     return a.line < b.line;
                   });
  return out;
}

}  // namespace pipes::analyze
