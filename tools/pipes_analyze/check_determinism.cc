/// \file check_determinism.cc
/// \brief determinism: no src/ code may read wall clocks, draw unseeded
/// randomness, or sleep real time without a reviewed waiver — and code under
/// src/testing/ (the simulation harness) may not even waive.
///
/// The simulation harness's replayability rests on every sim-reachable path
/// flowing through VirtualClock and the seeded pipes::Rng. The compiler
/// cannot see that contract, so this check bans the raw sources of
/// nondeterminism at the token level:
///
///   time      steady_clock, system_clock, high_resolution_clock,
///             clock_gettime, gettimeofday, time(...)-free funcs excluded
///   entropy   random_device, mt19937, mt19937_64, srand
///   sleeping  sleep_for, sleep_until, usleep, nanosleep
///
/// Sanctioned uses carry `// pipes-analyze: nondeterministic(<reason>)` on
/// the same or preceding line. Today's full waiver set: SystemClock itself
/// (every read bumps SystemClockUseCount, which the harness asserts stays
/// flat), the scheduler's real-time task-runtime measurement, and the fault
/// injector's real sleep (never armed under the sim, which injects latency
/// as virtual link delay instead). Waivers are *ignored* under src/testing/:
/// the harness must be deterministic unconditionally.

#include <set>
#include <string>
#include <vector>

#include "pipes_analyze/analyzer.h"
#include "pipes_analyze/source_model.h"

namespace pipes::analyze {
namespace {

constexpr const char* kCheck = "determinism";
constexpr const char* kWaiver = "nondeterministic";

const std::set<std::string>& ForbiddenIdents() {
  static const std::set<std::string> kForbidden = {
      "steady_clock", "system_clock", "high_resolution_clock",
      "clock_gettime", "gettimeofday", "random_device",
      "mt19937",      "mt19937_64",   "srand",
      "sleep_for",    "sleep_until",  "usleep",
      "nanosleep",
  };
  return kForbidden;
}

}  // namespace

void CheckDeterminism(const Options& opts, std::vector<Finding>* out) {
  for (const std::string& rel : ListSources(opts.root, "src")) {
    auto file = LoadSource(opts.root, rel);
    if (!file) {
      out->push_back({kCheck, rel, 0, "could not read file"});
      continue;
    }
    const bool waivable = rel.rfind("src/testing/", 0) != 0;
    for (const Token& tok : Lex(file->stripped)) {
      if (tok.kind != TokKind::kIdent) continue;
      if (ForbiddenIdents().count(tok.text) == 0) continue;
      if (waivable && file->HasWaiver(kWaiver, tok.line)) continue;
      std::string why =
          waivable
              ? "add `// pipes-analyze: nondeterministic(<reason>)` if this "
                "use is reviewed"
              : "src/testing/ is the simulation harness and may not waive";
      out->push_back({kCheck, rel, tok.line,
                      "nondeterminism source '" + tok.text +
                          "': sim-reachable code must use the injected "
                          "Clock and seeded Rng (" +
                          why + ")"});
    }
  }
}

}  // namespace pipes::analyze
