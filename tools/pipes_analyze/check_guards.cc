/// \file check_guards.cc
/// \brief guard-coverage: in any class that uses PIPES_GUARDED_BY /
/// PIPES_PT_GUARDED_BY, every mutable data member must itself be annotated,
/// a std::atomic, a lock, const, a reference, or carry an explicit
/// `// pipes-analyze: unguarded(<reason>)` waiver.
///
/// Rationale: Clang's -Wthread-safety only checks members that are
/// *already* annotated — a freshly added member silently opts out of the
/// whole analysis. This check closes that hole: once a class opts into the
/// guarded-state discipline, opting a member out has to be a reviewed,
/// written-down decision.
///
/// The scanner is a heuristic statement splitter over the token stream
/// (see source_model.h): it tracks class/namespace scopes by brace
/// matching, skips function bodies (a `{...}` group not followed by `;`),
/// and classifies the remaining class-scope statements as data members by
/// their declarator shape (last identifier before `;` / `=` / `{init}`,
/// not followed by `(`).

#include <string>
#include <vector>

#include "pipes_analyze/analyzer.h"
#include "pipes_analyze/source_model.h"

namespace pipes::analyze {
namespace {

constexpr const char* kCheck = "guard-coverage";

/// Lock capabilities: a lock member is the guard, not guarded state.
bool IsLockType(const std::string& ident) {
  return ident == "Mutex" || ident == "RecursiveMutex" ||
         ident == "ReentrantSharedMutex";
}

struct Member {
  std::string name;
  int line = 0;
  bool guarded = false;  ///< has PIPES_GUARDED_BY / PIPES_PT_GUARDED_BY
  bool exempt = false;   ///< const / reference / atomic / lock / static
};

struct ClassInfo {
  std::string name;
  bool uses_guards = false;
  std::vector<Member> members;
};

/// A statement's tokens with the pseudo-token "{}" standing in for a
/// consumed brace-initializer group.
using Stmt = std::vector<Token>;

/// Strips PIPES_* macro invocations, alignas(...), and [[...]] attributes.
/// Sets *guarded when a guard annotation was among them.
Stmt StripAnnotations(const Stmt& in, bool* guarded) {
  Stmt out;
  for (size_t i = 0; i < in.size(); ++i) {
    const Token& t = in[i];
    if (t.kind == TokKind::kIdent && t.text.rfind("PIPES_", 0) == 0) {
      if (t.text == "PIPES_GUARDED_BY" || t.text == "PIPES_PT_GUARDED_BY") {
        *guarded = true;
      }
      if (i + 1 < in.size() && in[i + 1].Is("(")) {
        size_t close = MatchingClose(in, i + 1);
        i = close < in.size() ? close : in.size() - 1;
      }
      continue;
    }
    if (t.IsIdent("alignas") && i + 1 < in.size() && in[i + 1].Is("(")) {
      size_t close = MatchingClose(in, i + 1);
      i = close < in.size() ? close : in.size() - 1;
      continue;
    }
    if (t.Is("[") && i + 1 < in.size() && in[i + 1].Is("[")) {
      size_t close = MatchingClose(in, i);
      i = close < in.size() ? close : in.size() - 1;
      continue;
    }
    out.push_back(t);
  }
  return out;
}

/// Drops leading access-specifier labels (`public:` etc.), which accumulate
/// into the following statement because they carry no `;`.
void StripAccessLabels(Stmt* stmt) {
  while (stmt->size() >= 2 && (*stmt)[1].Is(":") &&
         ((*stmt)[0].IsIdent("public") || (*stmt)[0].IsIdent("private") ||
          (*stmt)[0].IsIdent("protected"))) {
    stmt->erase(stmt->begin(), stmt->begin() + 2);
  }
}

bool ContainsIdent(const Stmt& stmt, const char* ident) {
  for (const Token& t : stmt) {
    if (t.IsIdent(ident)) return true;
  }
  return false;
}

/// Classifies one class-scope statement; appends to cls->members when it is
/// a data-member declaration.
void ClassifyStatement(Stmt stmt, ClassInfo* cls) {
  bool guarded = false;
  stmt = StripAnnotations(stmt, &guarded);
  StripAccessLabels(&stmt);
  if (guarded) cls->uses_guards = true;
  if (stmt.size() < 2) return;

  const Token& first = stmt[0];
  if (first.IsIdent("using") || first.IsIdent("typedef") ||
      first.IsIdent("friend") || first.IsIdent("template") ||
      first.IsIdent("enum") || first.IsIdent("class") ||
      first.IsIdent("struct")) {
    return;  // type aliases, forward decls, nested type heads
  }
  // Class-level (not per-instance) and compile-time state is out of scope.
  if (ContainsIdent(stmt, "static") || ContainsIdent(stmt, "constexpr") ||
      ContainsIdent(stmt, "operator")) {
    return;
  }

  // Split off the initializer: declarator = tokens before the first
  // top-level `=` or before the consumed brace-init group (default
  // arguments sit inside parentheses and do not count).
  size_t decl_end = stmt.size();
  int angle = 0;
  int paren = 0;
  for (size_t i = 0; i < stmt.size(); ++i) {
    if (stmt[i].kind != TokKind::kPunct) continue;
    if (stmt[i].text == "<") ++angle;
    else if (stmt[i].text == ">") --angle;
    else if (stmt[i].text == "(") ++paren;
    else if (stmt[i].text == ")") --paren;
    else if (angle == 0 && paren == 0 &&
             (stmt[i].text == "=" || stmt[i].text == "{}")) {
      decl_end = i;
      break;
    }
  }
  if (decl_end < 2) return;

  // The member name is the last identifier of the declarator, skipping
  // trailing array extents and function qualifiers. A `)` there means a
  // function declaration (`void f() const noexcept override;`).
  size_t last = decl_end - 1;
  for (;;) {
    if (stmt[last].Is("]")) {
      size_t open = last;
      while (open > 0 && !stmt[open].Is("[")) --open;
      if (open == 0) return;
      last = open - 1;
      continue;
    }
    if (stmt[last].IsIdent("const") || stmt[last].IsIdent("noexcept") ||
        stmt[last].IsIdent("override") || stmt[last].IsIdent("final") ||
        stmt[last].IsIdent("volatile")) {
      if (last == 0) return;
      --last;
      continue;
    }
    break;
  }
  if (stmt[last].kind != TokKind::kIdent) return;  // `)`, `>` etc: not data
  Member m;
  m.name = stmt[last].text;
  m.line = stmt[last].line;
  m.guarded = guarded;

  // Exemptions, judged on the top-level declarator (template arguments do
  // not count: a vector<const T*> is still mutable state).
  angle = 0;
  for (size_t i = 0; i < last; ++i) {
    const Token& t = stmt[i];
    if (t.kind == TokKind::kPunct) {
      if (t.text == "<") ++angle;
      else if (t.text == ">") --angle;
      else if (t.text == "&" && angle == 0) m.exempt = true;  // reference
      continue;
    }
    if (angle != 0 || t.kind != TokKind::kIdent) continue;
    if (t.text == "const") m.exempt = true;
    if (t.text == "atomic") m.exempt = true;  // std::atomic<...>
    if (IsLockType(t.text)) m.exempt = true;
    if (t.text == "atomic_bool" || t.text == "atomic_int" ||
        t.text == "atomic_uint64_t") {
      m.exempt = true;
    }
  }
  cls->members.push_back(std::move(m));
}

/// Recursive scope scanner. `begin` points at the first token inside the
/// scope; returns the index just past the scope's closing `}` (or end).
size_t ScanScope(const std::vector<Token>& toks, size_t begin, bool is_class,
                 const std::string& class_name,
                 std::vector<ClassInfo>* classes) {
  ClassInfo cls;
  cls.name = class_name;
  Stmt stmt;
  size_t i = begin;
  while (i < toks.size()) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kPunct) {
      stmt.push_back(t);
      ++i;
      continue;
    }
    if (t.text == "}") {
      ++i;
      break;
    }
    if (t.text == ";") {
      if (is_class) ClassifyStatement(stmt, &cls);
      stmt.clear();
      ++i;
      continue;
    }
    if (t.text == "(" || t.text == "[") {
      // Consume the whole group so braces inside (default arguments,
      // lambdas, attributes) cannot be mistaken for scope braces.
      size_t close = MatchingClose(toks, i);
      for (size_t j = i; j <= close && j < toks.size(); ++j) {
        stmt.push_back(toks[j]);
      }
      i = close < toks.size() ? close + 1 : toks.size();
      continue;
    }
    if (t.text != "{") {
      stmt.push_back(t);
      ++i;
      continue;
    }

    // An opening brace: classify by the statement head gathered so far.
    bool dummy = false;
    Stmt head = StripAnnotations(stmt, &dummy);
    StripAccessLabels(&head);
    if (!head.empty() && head[0].IsIdent("namespace")) {
      i = ScanScope(toks, i + 1, /*is_class=*/false, "", classes);
      stmt.clear();
      continue;
    }
    if (ContainsIdent(head, "enum")) {
      size_t close = MatchingClose(toks, i);
      i = close < toks.size() ? close + 1 : toks.size();
      continue;  // tail (`;`) finalizes and drops the enum statement
    }
    bool is_type_head = false;
    std::string name = "<anon>";
    for (size_t j = 0; j + 1 < head.size(); ++j) {
      if ((head[j].IsIdent("class") || head[j].IsIdent("struct") ||
           head[j].IsIdent("union")) &&
          head[j + 1].kind == TokKind::kIdent) {
        is_type_head = true;
        name = head[j + 1].text;
        break;
      }
    }
    // `template <class T> void f() {` also matches ident-after-class; rule
    // it out: a type head has no parentheses.
    for (const Token& h : head) {
      if (h.Is("(") || h.Is(")")) is_type_head = false;
    }
    if (is_type_head) {
      i = ScanScope(toks, i + 1, /*is_class=*/true, name, classes);
      // Keep a type pseudo-token so `struct X {...} x_;` still yields a
      // member; a bare `};` finalizes a 1-token statement and is dropped.
      stmt.clear();
      stmt.push_back(Token{TokKind::kIdent, name, toks[i - 1].line});
      continue;
    }

    // Function body or brace initializer: skip the group, then peek. A
    // following `;` means the braces belonged to a declaration.
    size_t close = MatchingClose(toks, i);
    size_t next = close < toks.size() ? close + 1 : toks.size();
    if (next < toks.size() && toks[next].Is(";")) {
      stmt.push_back(Token{TokKind::kPunct, "{}", toks[i].line});
      i = next;  // the `;` finalizes the statement
    } else {
      stmt.clear();  // function definition: not a data member
      i = next;
    }
  }
  if (is_class && !cls.members.empty()) {
    classes->push_back(std::move(cls));
  } else if (is_class && cls.uses_guards) {
    classes->push_back(std::move(cls));
  }
  return i;
}

}  // namespace

void CheckGuardCoverage(const Options& opts, std::vector<Finding>* out) {
  for (const std::string& rel : ListSources(opts.root, "src")) {
    auto file = LoadSource(opts.root, rel);
    if (!file) {
      out->push_back({kCheck, rel, 0, "could not read file"});
      continue;
    }
    std::vector<Token> toks = Lex(file->stripped);
    std::vector<ClassInfo> classes;
    ScanScope(toks, 0, /*is_class=*/false, "", &classes);
    for (const ClassInfo& cls : classes) {
      if (!cls.uses_guards) continue;
      for (const Member& m : cls.members) {
        if (m.guarded || m.exempt) continue;
        if (file->HasWaiver("unguarded", m.line)) continue;
        out->push_back(
            {kCheck, rel, m.line,
             "class " + cls.name + ": mutable member '" + m.name +
                 "' is neither PIPES_GUARDED_BY, atomic, const, nor waived "
                 "(add an annotation or '// pipes-analyze: "
                 "unguarded(<reason>)')"});
      }
    }
  }
}

}  // namespace pipes::analyze
