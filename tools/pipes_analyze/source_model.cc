#include "pipes_analyze/source_model.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace pipes::analyze {

namespace fs = std::filesystem;

namespace {

/// Parses `pipes-analyze: <directive>(<reason>)` out of one comment's text.
void ParseWaivers(const std::string& comment, int end_line,
                  std::vector<SourceFile::Waiver>* out) {
  const std::string kTag = "pipes-analyze:";
  size_t pos = 0;
  while ((pos = comment.find(kTag, pos)) != std::string::npos) {
    size_t p = pos + kTag.size();
    while (p < comment.size() && std::isspace(static_cast<unsigned char>(comment[p]))) ++p;
    size_t name_start = p;
    while (p < comment.size() &&
           (std::isalnum(static_cast<unsigned char>(comment[p])) ||
            comment[p] == '-' || comment[p] == '_')) {
      ++p;
    }
    SourceFile::Waiver w;
    w.line = end_line;
    w.directive = comment.substr(name_start, p - name_start);
    if (p < comment.size() && comment[p] == '(') {
      size_t close = comment.find(')', p);
      if (close != std::string::npos) {
        w.reason = comment.substr(p + 1, close - p - 1);
      }
    }
    if (!w.directive.empty()) out->push_back(w);
    pos = p;
  }
}

}  // namespace

bool SourceFile::HasWaiver(const std::string& directive, int line) const {
  for (const Waiver& w : waivers) {
    if (w.directive == directive && (w.line == line || w.line == line - 1)) {
      return true;
    }
  }
  return false;
}

std::optional<SourceFile> LoadSource(const std::string& root,
                                     const std::string& rel) {
  SourceFile f;
  f.rel = rel;
  std::ifstream in(fs::path(root) / rel, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  f.raw = buf.str();

  // One pass: blank comments (preserving newlines so line numbers and
  // offsets survive), leave string/char literals intact, collect waivers.
  f.stripped = f.raw;
  std::string& s = f.stripped;
  int line = 1;
  size_t i = 0;
  while (i < s.size()) {
    char c = s[i];
    if (c == '\n') {
      ++line;
      ++i;
    } else if (c == '\'' && i > 0 &&
               (std::isalnum(static_cast<unsigned char>(s[i - 1])) ||
                s[i - 1] == '_')) {
      ++i;  // digit separator (1'000'000), not a character literal
    } else if (c == '"' || c == '\'') {
      char quote = c;
      ++i;
      while (i < s.size() && s[i] != quote) {
        if (s[i] == '\\' && i + 1 < s.size()) ++i;
        if (s[i] == '\n') ++line;  // unterminated literal; keep counting
        ++i;
      }
      ++i;  // closing quote
    } else if (c == '/' && i + 1 < s.size() && s[i + 1] == '/') {
      size_t end = s.find('\n', i);
      if (end == std::string::npos) end = s.size();
      ParseWaivers(s.substr(i, end - i), line, &f.waivers);
      std::fill(s.begin() + static_cast<ptrdiff_t>(i),
                s.begin() + static_cast<ptrdiff_t>(end), ' ');
      i = end;
    } else if (c == '/' && i + 1 < s.size() && s[i + 1] == '*') {
      size_t end = s.find("*/", i + 2);
      if (end == std::string::npos) end = s.size();
      else end += 2;
      std::string comment = s.substr(i, end - i);
      int end_line = line + static_cast<int>(
                                std::count(comment.begin(), comment.end(), '\n'));
      ParseWaivers(comment, end_line, &f.waivers);
      for (size_t j = i; j < end; ++j) {
        if (s[j] == '\n') ++line;
        else s[j] = ' ';
      }
      i = end;
    } else {
      ++i;
    }
  }
  return f;
}

std::vector<std::string> ListSources(const std::string& root,
                                     const std::string& subdir) {
  std::vector<std::string> out;
  fs::path base = fs::path(root) / subdir;
  std::error_code ec;
  if (!fs::is_directory(base, ec)) return out;
  for (auto it = fs::recursive_directory_iterator(base, ec);
       !ec && it != fs::recursive_directory_iterator(); it.increment(ec)) {
    if (!it->is_regular_file(ec)) continue;
    fs::path p = it->path();
    std::string ext = p.extension().string();
    if (ext != ".h" && ext != ".cc") continue;
    std::string rel = fs::relative(p, root, ec).generic_string();
    if (!ec) out.push_back(rel);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Token> Lex(const std::string& stripped) {
  std::vector<Token> out;
  const std::string& s = stripped;
  int line = 1;
  size_t i = 0;
  bool line_start = true;
  auto push = [&](TokKind kind, std::string text) {
    out.push_back(Token{kind, std::move(text), line});
  };
  while (i < s.size()) {
    char c = s[i];
    if (line_start && c == '#') {
      // Preprocessor directive: drop the whole (possibly continued) line.
      // Includes are re-scanned textually by the layering check; macro
      // definitions would only confuse the declaration heuristics.
      while (i < s.size()) {
        if (s[i] == '\\' && i + 1 < s.size() && s[i + 1] == '\n') {
          ++line;
          i += 2;
          continue;
        }
        if (s[i] == '\n') break;
        ++i;
      }
      continue;
    }
    if (c == '\n') {
      ++line;
      ++i;
      line_start = true;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    line_start = false;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < s.size() && (std::isalnum(static_cast<unsigned char>(s[i])) ||
                              s[i] == '_')) {
        ++i;
      }
      push(TokKind::kIdent, s.substr(start, i - start));
    } else if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      while (i < s.size() && (std::isalnum(static_cast<unsigned char>(s[i])) ||
                              s[i] == '.' || s[i] == '\'')) {
        ++i;
      }
      push(TokKind::kNumber, s.substr(start, i - start));
    } else if (c == '\'' && i > 0 &&
               (std::isalnum(static_cast<unsigned char>(s[i - 1])) ||
                s[i - 1] == '_')) {
      ++i;  // digit separator: glued to the preceding number token
    } else if (c == '"' || c == '\'') {
      char quote = c;
      int start_line = line;
      std::string value;
      ++i;
      while (i < s.size() && s[i] != quote) {
        if (s[i] == '\\' && i + 1 < s.size()) {
          ++i;  // keep escaped char raw; checks only compare whole literals
        }
        if (s[i] == '\n') ++line;
        value.push_back(s[i]);
        ++i;
      }
      ++i;
      out.push_back(Token{quote == '"' ? TokKind::kString : TokKind::kChar,
                          std::move(value), start_line});
    } else {
      push(TokKind::kPunct, std::string(1, c));
      ++i;
    }
  }
  return out;
}

size_t MatchingClose(const std::vector<Token>& tokens, size_t open) {
  if (open >= tokens.size()) return tokens.size();
  const std::string& o = tokens[open].text;
  std::string close = o == "(" ? ")" : o == "{" ? "}" : o == "[" ? "]" : "";
  if (close.empty()) return tokens.size();
  int depth = 0;
  for (size_t i = open; i < tokens.size(); ++i) {
    if (tokens[i].kind != TokKind::kPunct) continue;
    if (tokens[i].text == o) ++depth;
    else if (tokens[i].text == close && --depth == 0) return i;
  }
  return tokens.size();
}

}  // namespace pipes::analyze
