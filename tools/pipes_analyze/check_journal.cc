/// \file check_journal.cc
/// \brief journal: every DurabilityRecordType tag must round-trip — named
/// in the ToString switch, produced by some encoder call, and handled by
/// the ApplyRecord replay switch.
///
/// Why a dedicated check: a new record type that is encoded but never
/// replayed does not fail any test that restarts from a journal written by
/// the same binary *unless* the test happens to exercise that record —
/// recovery skips unknown work silently, which is data loss on restart.
/// Exhaustiveness must hold by construction, not by test luck.
///
/// ApplyRecord deliberately has no `default:` arm for this reason; the
/// check complements the compiler's -Wswitch by also proving the encoder
/// side exists and by running on every PR regardless of compiler flags.

#include <string>
#include <vector>

#include "pipes_analyze/analyzer.h"
#include "pipes_analyze/source_model.h"

namespace pipes::analyze {
namespace {

constexpr const char* kCheck = "journal";
constexpr const char* kSchemaHeader = "src/metadata/persistence.h";
constexpr const char* kSchemaImpl = "src/metadata/persistence.cc";
constexpr const char* kEnumName = "DurabilityRecordType";
constexpr const char* kToStringFn = "DurabilityRecordTypeToString";
constexpr const char* kReplayFn = "ApplyRecord";

struct Enumerator {
  std::string name;
  int line = 0;
};

/// Parses `enum class DurabilityRecordType [: type] { ... };` enumerators
/// and reports duplicate explicit values.
std::vector<Enumerator> ParseEnum(const std::vector<Token>& toks,
                                  std::vector<Finding>* out) {
  std::vector<Enumerator> tags;
  for (size_t i = 0; i + 2 < toks.size(); ++i) {
    if (!toks[i].IsIdent("enum") || !toks[i + 1].IsIdent("class") ||
        !toks[i + 2].IsIdent(kEnumName)) {
      continue;
    }
    size_t open = i + 3;
    while (open < toks.size() && !toks[open].Is("{")) ++open;
    size_t close = MatchingClose(toks, open);
    std::vector<std::string> seen_values;
    for (size_t j = open + 1; j < close; ++j) {
      if (toks[j].kind != TokKind::kIdent) continue;
      tags.push_back({toks[j].text, toks[j].line});
      // Skip an optional `= value`, checking explicit values for dups.
      if (j + 2 < close && toks[j + 1].Is("=")) {
        const std::string& v = toks[j + 2].text;
        for (const std::string& s : seen_values) {
          if (s == v) {
            out->push_back({kCheck, kSchemaHeader, toks[j].line,
                            "enumerator " + toks[j].text +
                                " reuses wire value " + v});
          }
        }
        seen_values.push_back(v);
        j += 2;
      }
      while (j + 1 < close && !toks[j + 1].Is(",")) ++j;
      ++j;  // the comma
    }
    break;
  }
  return tags;
}

/// Token range [begin, end) of the body of function `name`, or (0,0).
std::pair<size_t, size_t> FunctionBody(const std::vector<Token>& toks,
                                       const char* name) {
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!toks[i].IsIdent(name) || !toks[i + 1].Is("(")) continue;
    size_t params_close = MatchingClose(toks, i + 1);
    if (params_close + 1 >= toks.size()) continue;
    if (!toks[params_close + 1].Is("{")) continue;  // a declaration or call
    size_t body_close = MatchingClose(toks, params_close + 1);
    return {params_close + 2, body_close};
  }
  return {0, 0};
}

/// True when `DurabilityRecordType::tag` occurs in [begin, end); `as_case`
/// selects `case`-label occurrences vs. plain (encoder-side) mentions.
bool MentionsTag(const std::vector<Token>& toks, size_t begin, size_t end,
                 const std::string& tag, bool as_case) {
  for (size_t i = begin; i + 3 < end; ++i) {
    if (!toks[i].IsIdent(kEnumName) || !toks[i + 1].Is(":") ||
        !toks[i + 2].Is(":") || !toks[i + 3].IsIdent(tag.c_str())) {
      continue;
    }
    bool is_case = i > 0 && toks[i - 1].IsIdent("case");
    if (is_case == as_case) return true;
  }
  return false;
}

}  // namespace

void CheckJournalExhaustiveness(const Options& opts,
                                std::vector<Finding>* out) {
  auto header = LoadSource(opts.root, kSchemaHeader);
  if (!header) {
    out->push_back({kCheck, kSchemaHeader, 0, "could not read schema header"});
    return;
  }
  std::vector<Token> htoks = Lex(header->stripped);
  std::vector<Enumerator> tags = ParseEnum(htoks, out);
  if (tags.empty()) {
    out->push_back({kCheck, kSchemaHeader, 0,
                    std::string("enum class ") + kEnumName + " not found"});
    return;
  }

  auto impl = LoadSource(opts.root, kSchemaImpl);
  if (!impl) {
    out->push_back({kCheck, kSchemaImpl, 0, "could not read schema impl"});
    return;
  }
  std::vector<Token> itoks = Lex(impl->stripped);
  auto [ts_begin, ts_end] = FunctionBody(itoks, kToStringFn);
  auto [rp_begin, rp_end] = FunctionBody(itoks, kReplayFn);
  if (ts_begin == ts_end) {
    out->push_back({kCheck, kSchemaImpl, 0,
                    std::string(kToStringFn) + " definition not found"});
  }
  if (rp_begin == rp_end) {
    out->push_back({kCheck, kSchemaImpl, 0,
                    std::string(kReplayFn) + " definition not found"});
  }

  for (const Enumerator& tag : tags) {
    if (rp_begin != rp_end &&
        !MentionsTag(itoks, rp_begin, rp_end, tag.name, /*as_case=*/true)) {
      out->push_back({kCheck, kSchemaHeader, tag.line,
                      "record type " + tag.name + " has no case in " +
                          kReplayFn +
                          " — it would be encoded but silently dropped on "
                          "recovery (data loss)"});
    }
    if (ts_begin != ts_end &&
        !MentionsTag(itoks, ts_begin, ts_end, tag.name, /*as_case=*/true)) {
      out->push_back({kCheck, kSchemaHeader, tag.line,
                      "record type " + tag.name + " has no case in " +
                          kToStringFn});
    }
    if (!MentionsTag(itoks, 0, itoks.size(), tag.name, /*as_case=*/false)) {
      out->push_back({kCheck, kSchemaHeader, tag.line,
                      "record type " + tag.name +
                          " is never encoded (no non-case mention in " +
                          kSchemaImpl + ") — dead wire tag or missing "
                          "encoder"});
    }
  }
}

}  // namespace pipes::analyze
