/// \file check_lock_ranks.cc
/// \brief lock-rank: static × dynamic cross-validation of the locking
/// discipline (DESIGN.md §3.4.1).
///
/// Statically extracted facts:
///  - the kRank* table in src/common/lock_order.h (values must be unique
///    and positive — two constants sharing a value would let two distinct
///    hierarchy levels silently alias);
///  - every lock construction site `{"Class::member", lockorder::kRankX}`
///    in src/ (class names must be globally unique — RegisterLockClass
///    interns by name, so a duplicated name would merge two unrelated locks
///    into one class and mask real cycles; the named rank must exist).
///
/// Dynamic fact: the committed lock-order graph snapshot (a filtered
/// PIPES_LOCK_ORDER_DUMP, see `pipes_analyze --update-lock-graph`). Every
/// edge `A -> B` means "A was held while B was acquired" in a real test
/// run; the check requires both endpoints to be statically known lock
/// names and rank(A) < rank(B) whenever both are ranked. A violation means
/// the rank table and observed behaviour have drifted apart — either the
/// table is wrong or the snapshot is stale.

#include <map>
#include <string>
#include <vector>

#include "pipes_analyze/analyzer.h"
#include "pipes_analyze/lock_graph.h"
#include "pipes_analyze/source_model.h"

namespace pipes::analyze {
namespace {

constexpr const char* kCheck = "lock-rank";
constexpr const char* kRankHeader = "src/common/lock_order.h";

}  // namespace

std::map<std::string, int> ExtractRankTable(const Options& opts,
                                            std::vector<Finding>* out) {
  std::map<std::string, int> ranks;
  auto file = LoadSource(opts.root, kRankHeader);
  if (!file) {
    out->push_back({kCheck, kRankHeader, 0, "could not read rank table"});
    return ranks;
  }
  std::vector<Token> toks = Lex(file->stripped);
  std::map<int, std::string> by_value;
  for (size_t i = 0; i + 3 < toks.size(); ++i) {
    // constexpr int kRankX = <number>;
    if (!toks[i].IsIdent("constexpr") || !toks[i + 1].IsIdent("int")) continue;
    const Token& name = toks[i + 2];
    if (name.kind != TokKind::kIdent || name.text.rfind("kRank", 0) != 0)
      continue;
    if (!toks[i + 3].Is("=") || i + 4 >= toks.size() ||
        toks[i + 4].kind != TokKind::kNumber) {
      out->push_back({kCheck, kRankHeader, name.line,
                      "rank constant " + name.text +
                          " is not a plain integer literal"});
      continue;
    }
    int value = std::atoi(toks[i + 4].text.c_str());
    if (value <= 0) {
      out->push_back({kCheck, kRankHeader, name.line,
                      "rank constant " + name.text +
                          " must be positive (0 means unranked)"});
    }
    if (ranks.count(name.text)) {
      out->push_back({kCheck, kRankHeader, name.line,
                      "rank constant " + name.text + " declared twice"});
    } else {
      ranks[name.text] = value;
      auto [it, inserted] = by_value.emplace(value, name.text);
      if (!inserted) {
        out->push_back({kCheck, kRankHeader, name.line,
                        "rank value " + toks[i + 4].text + " of " + name.text +
                            " duplicates " + it->second +
                            " (hierarchy levels must not alias)"});
      }
    }
  }
  if (ranks.empty()) {
    out->push_back({kCheck, kRankHeader, 0, "no kRank* constants found"});
  }
  return ranks;
}

std::map<std::string, LockSite> ExtractLockSites(
    const Options& opts, const std::map<std::string, int>& ranks,
    std::vector<Finding>* out) {
  std::map<std::string, LockSite> sites;
  for (const std::string& rel : ListSources(opts.root, "src")) {
    if (rel == kRankHeader) continue;  // the table itself, not a use site
    auto file = LoadSource(opts.root, rel);
    if (!file) continue;  // reported by other checks
    std::vector<Token> toks = Lex(file->stripped);
    for (size_t i = 0; i + 2 < toks.size(); ++i) {
      // "Lock::name", [lockorder ::] kRankX   (a lock-member initializer)
      if (toks[i].kind != TokKind::kString || !toks[i + 1].Is(",")) continue;
      size_t r = i + 2;
      if (toks[r].IsIdent("lockorder") && r + 2 < toks.size() &&
          toks[r + 1].Is(":") && toks[r + 2].Is(":")) {
        r += 3;
      }
      if (r >= toks.size() || toks[r].kind != TokKind::kIdent ||
          toks[r].text.rfind("kRank", 0) != 0) {
        continue;
      }
      const std::string& name = toks[i].text;
      if (!ranks.count(toks[r].text)) {
        out->push_back({kCheck, rel, toks[r].line,
                        "lock '" + name + "' names unknown rank constant " +
                            toks[r].text});
      }
      auto it = sites.find(name);
      if (it != sites.end()) {
        out->push_back(
            {kCheck, rel, toks[i].line,
             "lock class name '" + name + "' already declared at " +
                 it->second.file + ":" + std::to_string(it->second.line) +
                 " (names intern globally; duplicates merge unrelated "
                 "locks)"});
      } else {
        auto rank_it = ranks.find(toks[r].text);
        sites[name] = LockSite{rel, toks[i].line,
                               rank_it == ranks.end() ? 0 : rank_it->second};
      }
    }
  }
  if (sites.empty()) {
    out->push_back({kCheck, "src", 0, "no ranked lock constructions found"});
  }
  return sites;
}

void CheckLockRanks(const Options& opts, std::vector<Finding>* out) {
  std::map<std::string, int> ranks = ExtractRankTable(opts, out);
  std::map<std::string, LockSite> sites = ExtractLockSites(opts, ranks, out);

  std::string graph_rel = opts.lock_graph_path.empty()
                              ? std::string(kDefaultLockGraphPath)
                              : opts.lock_graph_path;
  std::vector<LockEdge> edges;
  if (!LoadLockGraph(opts.root, graph_rel, &edges)) {
    out->push_back({kCheck, graph_rel, 0,
                    "lock-order snapshot missing (regenerate with "
                    "'pipes_analyze --update-lock-graph <raw-dump>')"});
    return;
  }
  for (const LockEdge& e : edges) {
    if (e.from == e.to) continue;  // same class: reentrant, never an edge
    auto from = sites.find(e.from);
    auto to = sites.find(e.to);
    if (from == sites.end()) {
      out->push_back({kCheck, graph_rel, e.line,
                      "snapshot lock '" + e.from +
                          "' is not declared anywhere in src/ (stale "
                          "snapshot after a rename?)"});
      continue;
    }
    if (to == sites.end()) {
      out->push_back({kCheck, graph_rel, e.line,
                      "snapshot lock '" + e.to +
                          "' is not declared anywhere in src/ (stale "
                          "snapshot after a rename?)"});
      continue;
    }
    int rf = from->second.rank;
    int rt = to->second.rank;
    if (rf > 0 && rt > 0 && rf >= rt) {
      out->push_back(
          {kCheck, graph_rel, e.line,
           "observed order '" + e.from + "' (rank " + std::to_string(rf) +
               ") held before '" + e.to + "' (rank " + std::to_string(rt) +
               ") contradicts the rank table: ranks must strictly increase "
               "along held-before edges"});
    }
  }
}

}  // namespace pipes::analyze
