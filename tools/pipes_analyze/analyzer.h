/// \file analyzer.h
/// \brief `pipes_analyze` — a source-level checker for project invariants
/// that generic tooling (clang-tidy, -Wthread-safety) cannot express.
///
/// Seven checks, each a free function over a repository root:
///
///  - guard-coverage  every mutable data member of a class that uses
///                    PIPES_GUARDED_BY must itself be annotated, atomic,
///                    a lock, or carry a reviewed waiver comment
///                    `// pipes-analyze: unguarded(<reason>)`.
///  - layering        the include DAG between src/ modules must match the
///                    build graph (common ← metadata ← stream ← {costmodel,
///                    runtime}, query_builder above all), and src/ must
///                    never include tests/ or bench/ headers.
///  - lock-rank       the kRank* table in lock_order.h is unique and
///                    positive, every lock construction names a known rank,
///                    lock-class names are globally unique, and the
///                    committed PIPES_LOCK_ORDER_DUMP snapshot is
///                    rank-monotone and contains only known classes.
///  - journal         every DurabilityRecordType tag appears in the
///                    encoder, the ToString switch, and the replay switch
///                    (a missing replay arm is silent data loss on restart).
///  - kill-points     every KillPoint("site") name is unique and exercised
///                    by the crash matrix in durability_test.cc (and the
///                    matrix lists no stale sites).
///  - determinism     no src/ code reads wall clocks, draws unseeded
///                    randomness, or sleeps real time without a reviewed
///                    `// pipes-analyze: nondeterministic(<reason>)` waiver;
///                    src/testing/ (the simulation harness) may not waive
///                    at all.
///  - sim-seams       tests/sim/ includes only the published test seams
///                    (quoted includes must resolve into src/testing/).
///
/// The checks are deliberately project-specific: they hard-code this
/// repository's layout (src/<module>/..., persistence.{h,cc}, the crash
/// matrix file) so that a violation is a one-line, zero-configuration
/// finding. Fixture trees under tests/tools/fixtures mirror that layout.

#pragma once

#include <string>
#include <vector>

namespace pipes::analyze {

/// One reported violation. `file` is root-relative, `line` is 1-based
/// (0 when the finding is about a file or table as a whole).
struct Finding {
  std::string check;    ///< check name, e.g. "guard-coverage"
  std::string file;     ///< root-relative path ('/'-separated)
  int line = 0;         ///< 1-based; 0 = whole-file finding
  std::string message;  ///< one-line description

  std::string ToString() const;
};

/// Options shared by every check.
struct Options {
  /// Repository root (must contain src/). Absolute or cwd-relative.
  std::string root;
  /// Lock-order snapshot path; empty = <root>/tools/lock_order_graph.txt.
  std::string lock_graph_path;
};

/// \name The seven checks
/// Each appends findings for its invariant. IO problems (an expected file
/// missing from the tree) are reported as findings, not exceptions: a tree
/// that lost its crash matrix should fail the gate, not skip it.
///@{
void CheckGuardCoverage(const Options& opts, std::vector<Finding>* out);
void CheckLayering(const Options& opts, std::vector<Finding>* out);
void CheckLockRanks(const Options& opts, std::vector<Finding>* out);
void CheckJournalExhaustiveness(const Options& opts,
                                std::vector<Finding>* out);
void CheckKillPoints(const Options& opts, std::vector<Finding>* out);
void CheckDeterminism(const Options& opts, std::vector<Finding>* out);
void CheckSimSeams(const Options& opts, std::vector<Finding>* out);
///@}

/// All registered check names, in report order.
std::vector<std::string> AllCheckNames();

/// Runs the named checks (all when `checks` is empty). Unknown names
/// produce a finding with check "usage". Returns the findings sorted by
/// (check, file, line).
std::vector<Finding> RunChecks(const Options& opts,
                               const std::vector<std::string>& checks);

}  // namespace pipes::analyze
