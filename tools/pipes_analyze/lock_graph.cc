#include "pipes_analyze/lock_graph.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>

namespace pipes::analyze {

namespace {

/// Trims ASCII whitespace from both ends.
std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

/// Parses one `from -> to  [holding: ...]` line. False for non-edge lines.
bool ParseEdgeLine(const std::string& line, LockEdge* out) {
  std::string body = line;
  size_t bracket = body.find("  [");
  if (bracket != std::string::npos) body = body.substr(0, bracket);
  size_t arrow = body.find(" -> ");
  if (arrow == std::string::npos) return false;
  out->from = Trim(body.substr(0, arrow));
  out->to = Trim(body.substr(arrow + 4));
  return !out->from.empty() && !out->to.empty();
}

}  // namespace

bool LoadLockGraph(const std::string& root, const std::string& rel,
                   std::vector<LockEdge>* out) {
  std::ifstream in(std::filesystem::path(root) / rel);
  if (!in) return false;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::string t = Trim(line);
    if (t.empty() || t[0] == '#') continue;
    LockEdge e;
    if (ParseEdgeLine(t, &e)) {
      e.line = lineno;
      out->push_back(std::move(e));
    }
  }
  return true;
}

bool UpdateLockGraph(const Options& opts, const std::string& raw_dump_path) {
  std::vector<Finding> scratch;
  std::map<std::string, int> ranks = ExtractRankTable(opts, &scratch);
  std::map<std::string, LockSite> sites =
      ExtractLockSites(opts, ranks, &scratch);
  if (sites.empty()) {
    std::cerr << "pipes_analyze: no production lock classes found under "
              << opts.root << "/src\n";
    return false;
  }

  std::ifstream in(raw_dump_path);
  if (!in) {
    std::cerr << "pipes_analyze: cannot read raw dump " << raw_dump_path
              << "\n";
    return false;
  }
  std::set<std::pair<std::string, std::string>> seen;
  std::vector<std::string> kept;
  size_t dropped = 0;
  std::string line;
  while (std::getline(in, line)) {
    LockEdge e;
    if (!ParseEdgeLine(Trim(line), &e)) continue;
    if (!sites.count(e.from) || !sites.count(e.to)) {
      ++dropped;  // test-fixture lock classes: not part of the contract
      continue;
    }
    if (!seen.emplace(e.from, e.to).second) continue;
    kept.push_back(e.from + " -> " + e.to);
  }
  std::sort(kept.begin(), kept.end());

  std::string rel = opts.lock_graph_path.empty()
                        ? std::string(kDefaultLockGraphPath)
                        : opts.lock_graph_path;
  std::ofstream outf(std::filesystem::path(opts.root) / rel,
                     std::ios::trunc);
  if (!outf) {
    std::cerr << "pipes_analyze: cannot write " << rel << "\n";
    return false;
  }
  outf << "# Lock-order graph snapshot — the dynamic half of the lock-rank\n"
          "# cross-check (see DESIGN.md §3.8). Each line records that the\n"
          "# left lock class was held while the right one was acquired in a\n"
          "# real test run. Regenerate after changing the lock hierarchy:\n"
          "#\n"
          "#   cmake -B build -S . && cmake --build build -j\n"
          "#   PIPES_LOCK_ORDER_DUMP=/tmp/lock_dump.txt \\\n"
          "#     ctest --test-dir build -j\"$(nproc)\"\n"
          "#   build/tools/pipes_analyze --root . \\\n"
          "#     --update-lock-graph /tmp/lock_dump.txt\n"
          "#\n"
          "# Edges whose endpoints are not production lock classes (test\n"
          "# fixtures) are filtered out automatically.\n";
  for (const std::string& k : kept) outf << k << "\n";
  std::cerr << "pipes_analyze: wrote " << kept.size() << " edges to " << rel
            << " (" << dropped << " non-production edge lines dropped)\n";
  return outf.good();
}

}  // namespace pipes::analyze
