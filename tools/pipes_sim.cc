/// \file pipes_sim.cc
/// \brief Deterministic simulation runner: seeded random metadata schedules
/// checked against the reference model.
///
/// Each seed generates one schedule (see src/testing/sim_schedule.h) and
/// runs it against a full metadata stack — manager, providers, durability
/// with crash-restarts, or federation over a faulty loopback link — in
/// lock-step with an in-memory reference model. Seeds rotate through the
/// feature mixes {crashes only, federation only, pure local}, so a single
/// run covers all configurations. Everything executes on virtual time with
/// schedule-seeded randomness: a seed that fails here fails identically
/// everywhere, and --log output is byte-identical across runs.
///
/// Failing seeds print a one-line repro command plus a greedily shrunk
/// schedule (bounded ddmin over the op list).
///
/// Usage: pipes_sim [options]
///   --schedules N     seeds to run (default 50)
///   --seed S          first seed (default 1; seeds S..S+N-1 run)
///   --ops N           body ops per schedule (default 120)
///   --providers N     provider pool size, 1..9 (default 3)
///   --keys N          keys per provider, 1..9 (default 4)
///   --no-federation   drop federation schedules from the rotation
///   --no-crashes      drop crash-restart schedules from the rotation
///   --no-durability   run without journaling/checkpoints entirely
///   --inject-bug      forge duplicate remote pushes (self-test: the
///                     observed-value oracle must catch them; exit 1)
///   --shrink-attempts N  harness runs the shrinker may spend (default 200)
///   --log FILE        append every schedule's event log to FILE
///   --quiet           only print failures and the summary
///   --help            this text
///
/// Exit status: 0 = every schedule passed, 1 = at least one failed,
/// 64 = usage error.

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "testing/sim_harness.h"
#include "testing/sim_schedule.h"
#include "testing/sim_shrink.h"

namespace {

void PrintUsage(FILE* out) {
  std::fprintf(out,
               "usage: pipes_sim [--schedules N] [--seed S] [--ops N]\n"
               "                 [--providers N] [--keys N] [--no-federation]\n"
               "                 [--no-crashes] [--no-durability]\n"
               "                 [--inject-bug] [--shrink-attempts N]\n"
               "                 [--log FILE] [--quiet] [--help]\n"
               "\n"
               "Runs seeded random metadata schedules against the reference\n"
               "model on virtual time. Deterministic: a seed fails (or\n"
               "passes) identically on every machine, and --log output is\n"
               "byte-identical across runs.\n"
               "\n"
               "exit status: 0 all passed, 1 failures, 64 usage error\n");
}

bool ParseInt(const char* s, int64_t* out) {
  char* end = nullptr;
  long long v = std::strtoll(s, &end, 10);
  if (end == s || *end != '\0') return false;
  *out = v;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t schedules = 50;
  uint64_t first_seed = 1;
  int shrink_attempts = 200;
  bool inject_bug = false;
  bool quiet = false;
  std::string log_path;
  pipes::sim::SimProfile base;
  base.federation = true;  // rotation splits federation/crashes per seed
  base.crashes = true;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_int = [&](int64_t* out) {
      if (i + 1 >= argc || !ParseInt(argv[++i], out)) {
        std::fprintf(stderr, "pipes_sim: %s needs an integer argument\n",
                     arg.c_str());
        return false;
      }
      return true;
    };
    int64_t v = 0;
    if (arg == "--help" || arg == "-h") {
      PrintUsage(stdout);
      return 0;
    } else if (arg == "--schedules") {
      if (!next_int(&v) || v < 1) return 64;
      schedules = static_cast<uint64_t>(v);
    } else if (arg == "--seed") {
      if (!next_int(&v) || v < 0) return 64;
      first_seed = static_cast<uint64_t>(v);
    } else if (arg == "--ops") {
      if (!next_int(&v) || v < 1) return 64;
      base.ops = static_cast<int>(v);
    } else if (arg == "--providers") {
      if (!next_int(&v) || v < 1 || v > 9) return 64;
      base.providers = static_cast<int>(v);
    } else if (arg == "--keys") {
      if (!next_int(&v) || v < 1 || v > 9) return 64;
      base.keys = static_cast<int>(v);
    } else if (arg == "--no-federation") {
      base.federation = false;
    } else if (arg == "--no-crashes") {
      base.crashes = false;
    } else if (arg == "--no-durability") {
      base.durability = false;
      base.crashes = false;
    } else if (arg == "--inject-bug") {
      inject_bug = true;
    } else if (arg == "--shrink-attempts") {
      if (!next_int(&v) || v < 0) return 64;
      shrink_attempts = static_cast<int>(v);
    } else if (arg == "--log") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "pipes_sim: --log needs a file argument\n");
        return 64;
      }
      log_path = argv[++i];
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      std::fprintf(stderr, "pipes_sim: unknown option '%s'\n", arg.c_str());
      PrintUsage(stderr);
      return 64;
    }
  }

  if (inject_bug) {
    // The forged duplicates ride the federation link; make every schedule a
    // federation one so each seed exercises the oracle under test.
    base.federation = true;
    base.crashes = false;
  }

  std::ofstream log_file;
  if (!log_path.empty()) {
    log_file.open(log_path, std::ios::out | std::ios::app);
    if (!log_file) {
      std::fprintf(stderr, "pipes_sim: cannot open log file '%s'\n",
                   log_path.c_str());
      return 64;
    }
  }

  pipes::sim::SimRunOptions opts;
  opts.inject_duplicates = inject_bug;

  uint64_t failures = 0;
  for (uint64_t n = 0; n < schedules; ++n) {
    const uint64_t seed = first_seed + n;
    pipes::sim::SimProfile profile = pipes::sim::ProfileForSeed(seed, base);
    pipes::sim::SimSchedule schedule =
        pipes::sim::GenerateSchedule(seed, profile);
    pipes::sim::SimRunResult result = pipes::sim::RunSchedule(schedule, opts);
    if (log_file.is_open()) {
      log_file << "=== seed " << seed << " ops=" << schedule.ops.size()
               << " federation=" << (profile.federation ? 1 : 0)
               << " crashes=" << (profile.crashes ? 1 : 0) << " ===\n"
               << result.event_log;
      log_file << (result.ok ? "PASS" : "FAIL") << "\n";
    }
    if (result.ok) {
      if (!quiet) {
        std::printf("seed %" PRIu64 ": ok (%zu ops)\n", seed,
                    schedule.ops.size());
      }
      continue;
    }
    ++failures;
    std::printf("seed %" PRIu64 ": FAIL at op %d: %s\n", seed,
                result.failed_op, result.failure.c_str());
    std::printf("  repro: pipes_sim --schedules 1 --seed %" PRIu64
                " --ops %d --providers %d --keys %d%s%s%s%s\n",
                seed, base.ops, base.providers, base.keys,
                base.federation ? "" : " --no-federation",
                base.crashes ? "" : " --no-crashes",
                base.durability ? "" : " --no-durability",
                inject_bug ? " --inject-bug" : "");
    if (shrink_attempts > 0) {
      pipes::sim::SimSchedule shrunk =
          pipes::sim::ShrinkSchedule(schedule, opts, shrink_attempts);
      pipes::sim::SimRunResult shrunk_result =
          pipes::sim::RunSchedule(shrunk, opts);
      std::printf("  shrunk %zu ops -> %zu ops (fails at op %d: %s):\n",
                  schedule.ops.size(), shrunk.ops.size(),
                  shrunk_result.failed_op, shrunk_result.failure.c_str());
      std::fputs(pipes::sim::Describe(shrunk).c_str(), stdout);
    }
  }

  std::printf("pipes_sim: %" PRIu64 " schedule%s, %" PRIu64 " failed\n",
              schedules, schedules == 1 ? "" : "s", failures);
  return failures == 0 ? 0 : 1;
}
