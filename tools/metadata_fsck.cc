/// \file metadata_fsck.cc
/// \brief Offline integrity checker for metadata durability directories.
///
/// Walks a directory written by MetadataManager::EnableDurability and
/// verifies every snapshot-* and journal-* file: container header, frame
/// CRCs, record decodability, and snapshot bracketing (kSnapshotBegin ...
/// kSnapshotEnd with a matching record count). Reports torn tails and
/// corrupt records the way recovery would classify them, without touching
/// the files — unless --repair is given, which truncates torn journal tails
/// in place (exactly what replay would do).
///
/// Usage:  metadata_fsck [--repair] [--verbose] <dir>
///
/// Exit status (scriptable; see --help):
///   0 = clean: no damage found, nothing changed
///   1 = repaired: damage found and fully fixed in place (--repair)
///   2 = unrepairable: damage remains (not repairable, or --repair not given)
///  64 = usage error

#include <dirent.h>

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "common/journal.h"
#include "metadata/persistence.h"

namespace {

using pipes::DurabilityRecordType;
using pipes::JournalScan;
using pipes::RecordDecoder;
using pipes::Result;
using pipes::ScannedRecord;

struct FileReport {
  std::string name;
  bool journal = false;
  JournalScan scan;
  bool snapshot_complete = false;  // journals: unused
  uint64_t undecodable = 0;        // CRC-valid but schema-invalid records
  std::map<std::string, uint64_t> type_counts;
};

std::vector<std::string> ListFiles(const std::string& dir,
                                   const char* prefix) {
  std::vector<std::string> names;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return names;
  size_t plen = std::strlen(prefix);
  while (dirent* e = ::readdir(d)) {
    if (std::strncmp(e->d_name, prefix, plen) == 0) names.push_back(e->d_name);
  }
  ::closedir(d);
  std::sort(names.begin(), names.end());
  return names;
}

/// Decodes the [type][lsn] head of every record, tallying per-type counts
/// and schema damage. Returns min/max LSN seen through `lsn_lo`/`lsn_hi`.
void TallyRecords(const std::vector<ScannedRecord>& records, FileReport* r,
                  uint64_t* lsn_lo, uint64_t* lsn_hi) {
  for (const ScannedRecord& rec : records) {
    RecordDecoder dec(rec.payload);
    uint8_t type = 0;
    uint64_t lsn = 0;
    if (!dec.GetU8(&type) || !dec.GetU64(&lsn)) {
      r->undecodable += 1;
      continue;
    }
    r->type_counts[pipes::DurabilityRecordTypeToString(
        static_cast<DurabilityRecordType>(type))] += 1;
    if (*lsn_lo == 0 || lsn < *lsn_lo) *lsn_lo = lsn;
    if (lsn > *lsn_hi) *lsn_hi = lsn;
  }
}

bool CheckSnapshotBrackets(const JournalScan& scan) {
  if (scan.records.size() < 2) return false;
  auto head_type = [](const ScannedRecord& rec, uint64_t* tail_count) {
    RecordDecoder dec(rec.payload);
    uint8_t type = 0;
    uint64_t lsn = 0;
    if (!dec.GetU8(&type) || !dec.GetU64(&lsn)) return -1;
    if (tail_count != nullptr && !dec.GetU64(tail_count)) return -1;
    return static_cast<int>(type);
  };
  if (head_type(scan.records.front(), nullptr) !=
      static_cast<int>(DurabilityRecordType::kSnapshotBegin)) {
    return false;
  }
  uint64_t declared = 0;
  if (head_type(scan.records.back(), &declared) !=
      static_cast<int>(DurabilityRecordType::kSnapshotEnd)) {
    return false;
  }
  return declared == scan.records.size();
}

constexpr int kExitClean = 0;
constexpr int kExitRepaired = 1;
constexpr int kExitUnrepairable = 2;
constexpr int kExitUsage = 64;

void PrintHelp(std::FILE* out) {
  std::fprintf(out,
               "usage: metadata_fsck [--repair] [--verbose] <dir>\n"
               "\n"
               "Offline integrity checker for metadata durability "
               "directories\n"
               "(snapshot-* and journal-* files written by "
               "EnableDurability).\n"
               "\n"
               "options:\n"
               "  --repair       truncate torn journal tails in place "
               "(exactly what\n"
               "                 recovery replay would discard)\n"
               "  --verbose, -v  per-file record-type tallies\n"
               "  --help, -h     this text\n"
               "\n"
               "exit status:\n"
               "  0  clean: no damage found, nothing changed\n"
               "  1  repaired: damage was found and fully fixed in place\n"
               "  2  unrepairable: damage remains (needs restore from "
               "snapshot,\n"
               "     or rerun with --repair for torn tails)\n"
               "  64 usage error\n");
}

}  // namespace

int main(int argc, char** argv) {
  bool repair = false;
  bool verbose = false;
  std::string dir;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--repair") {
      repair = true;
    } else if (arg == "--verbose" || arg == "-v") {
      verbose = true;
    } else if (arg == "--help" || arg == "-h") {
      PrintHelp(stdout);
      return kExitClean;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return kExitUsage;
    } else {
      dir = arg;
    }
  }
  if (dir.empty()) {
    PrintHelp(stderr);
    return kExitUsage;
  }

  uint64_t damage = 0;
  uint64_t repaired = 0;
  auto check = [&](const char* prefix, uint32_t magic, bool journal) {
    for (const std::string& name : ListFiles(dir, prefix)) {
      std::string path = dir + "/" + name;
      Result<JournalScan> scan = pipes::ScanJournalFile(path, magic);
      if (!scan.ok()) {
        std::printf("%-32s  UNREADABLE (%s)\n", name.c_str(),
                    scan.status().ToString().c_str());
        ++damage;
        continue;
      }
      FileReport r;
      r.name = name;
      r.journal = journal;
      r.scan = std::move(scan.value());
      uint64_t lsn_lo = 0, lsn_hi = 0;
      TallyRecords(r.scan.records, &r, &lsn_lo, &lsn_hi);

      std::string verdict = "ok";
      if (!r.scan.header_ok) {
        verdict = "BAD HEADER";
      } else if (!journal && !CheckSnapshotBrackets(r.scan)) {
        verdict = "INCOMPLETE SNAPSHOT";
      } else if (r.scan.corrupt_records > 0 || r.undecodable > 0) {
        verdict = "CORRUPT RECORDS";
      } else if (r.scan.torn_tail) {
        verdict = "TORN TAIL";
      }
      bool damaged = verdict != "ok";
      if (damaged) ++damage;

      std::printf("%-32s  gen=%" PRIu64 "  records=%zu  lsn=[%" PRIu64
                  "..%" PRIu64 "]  corrupt=%" PRIu64 "  %s",
                  name.c_str(), r.scan.generation, r.scan.records.size(),
                  lsn_lo, lsn_hi, r.scan.corrupt_records + r.undecodable,
                  verdict.c_str());
      if (r.scan.torn_tail) {
        std::printf("  (torn tail: %" PRIu64 " bytes past offset %" PRIu64 ")",
                    r.scan.file_bytes - r.scan.valid_bytes, r.scan.valid_bytes);
      }
      std::printf("\n");
      if (verbose) {
        for (const auto& [type, count] : r.type_counts) {
          std::printf("    %-18s %" PRIu64 "\n", type.c_str(), count);
        }
      }
      if (repair && journal && r.scan.torn_tail && r.scan.header_ok) {
        pipes::Status st = pipes::TruncateFileTo(path, r.scan.valid_bytes);
        if (st.ok()) {
          std::printf("    repaired: truncated to %" PRIu64 " bytes\n",
                      r.scan.valid_bytes);
          ++repaired;
          if (verdict == "TORN TAIL") --damage;
        } else {
          std::printf("    repair FAILED: %s\n", st.ToString().c_str());
        }
      }
    }
  };
  check("snapshot-", pipes::kSnapshotMagic, /*journal=*/false);
  check("journal-", pipes::kJournalMagic, /*journal=*/true);

  if (damage == 0) {
    if (repaired > 0) {
      std::printf("clean after repair (%" PRIu64 " file(s) fixed)\n",
                  repaired);
      return kExitRepaired;
    }
    std::printf("clean\n");
    return kExitClean;
  }
  std::printf("%" PRIu64 " damaged file(s)%s\n", damage,
              repaired > 0 ? " (some repaired, damage remains)" : "");
  return kExitUnrepairable;
}
